//! The native Eden backend's algorithmic skeletons.
//!
//! Eden programs are written against skeletons — higher-order process
//! schemes — and the paper's workloads use exactly three shapes, all
//! implemented here on real threads over the bounded channels of
//! [`crate::channel`]:
//!
//! * [`par_map`] — the static farm: task `i` is assigned to PE
//!   `i mod workers` up front, each PE streams its result packets back
//!   to the master. Right for regular work (sumEuler chunks, matMul
//!   blocks) where a static deal is already balanced.
//! * [`master_worker`] — the demand-driven farm (the paper's answer
//!   to irregular tasks like nqueens): the master keeps `prefetch`
//!   task packets in flight per worker and hands out the next task
//!   only when a result comes back, so fast workers get more tasks.
//! * [`ring`] — PEs own contiguous blocks of items and pass a pivot
//!   packet around the ring once per wave (APSP's Floyd–Warshall
//!   rounds, the paper's §III.D ring skeleton).
//!
//! All three return the same [`NativeOutcome`] the steal backend
//! produces — values in task order, wall time, counters, and (when
//! tracing) one [`rph_trace::Tracer`] row per PE plus one for the
//! master — so every consumer (benches, differential tests, timeline
//! rendering) treats the two backends uniformly.
//!
//! Panic behaviour: a panicking PE drops its channel endpoints, which
//! unblocks its peers (their sends/recvs observe the close) and lets
//! the master's drain terminate. The fallible entry points
//! ([`try_par_map`], [`try_master_worker`], [`try_ring`]) then report
//! a typed [`EdenIncomplete`] naming the dead PEs and the task
//! indices whose results were lost; the infallible wrappers panic on
//! that error for one-shot callers.

use crate::channel::{bounded_with_notify, Packet, Receiver, Sender, Wordsize};
use crate::eden::{drain_results, empty_outcome, finish_run, Endpoint, PeReport, PeStats};
use crate::error::EdenIncomplete;
use crate::executor::{Job, NativeConfig, NativeOutcome};
use crate::park::EventCount;
use crate::pool::block_share;
use crate::trace::NEventKind;
use rph_trace::WallClock;
use std::sync::Arc;

/// Which farm skeleton a flat [`Job`] should run under on the Eden
/// backend. (The [`ring`] skeleton is not a farm — it needs the
/// richer [`RingJob`] shape — so it is not representable here.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skeleton {
    /// Static farm: [`par_map`].
    ParMap,
    /// Demand-driven farm with the given per-worker prefetch depth:
    /// [`master_worker`].
    MasterWorker {
        /// Task packets kept in flight per worker (clamped to ≥ 1).
        prefetch: usize,
    },
}

impl Skeleton {
    /// Run `job` under this skeleton, panicking if a PE dies mid-run
    /// (the one-shot contract; long-running callers use
    /// [`Self::try_run`]).
    pub fn run<J>(self, job: &J, cfg: &NativeConfig) -> NativeOutcome<J::Out>
    where
        J: Job,
        J::Out: Wordsize,
    {
        self.try_run(job, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run `job` under this skeleton, reporting a dead PE as a typed
    /// [`EdenIncomplete`] instead of panicking.
    pub fn try_run<J>(
        self,
        job: &J,
        cfg: &NativeConfig,
    ) -> Result<NativeOutcome<J::Out>, EdenIncomplete>
    where
        J: Job,
        J::Out: Wordsize,
    {
        match self {
            Skeleton::ParMap => try_par_map(job, cfg),
            Skeleton::MasterWorker { prefetch } => try_master_worker(job, cfg, prefetch),
        }
    }
}

/// Join the PE threads, swallowing (already-hooked) panics: a dead
/// PE contributes an empty report and its id to the returned list,
/// so the caller can surface a typed error instead of unwinding.
fn try_join_all(
    handles: Vec<std::thread::ScopedJoinHandle<'_, PeReport>>,
) -> (Vec<PeReport>, Vec<u32>) {
    let mut dead = Vec::new();
    let reports = handles
        .into_iter()
        .enumerate()
        .map(|(w, h)| match h.join() {
            Ok(rep) => rep,
            Err(_) => {
                dead.push(w as u32);
                PeReport {
                    stats: PeStats::default(),
                    events: Vec::new(),
                    dropped: 0,
                }
            }
        })
        .collect();
    (reports, dead)
}

/// Static farm: task `i` runs on PE `i mod workers`; every PE streams
/// `(index, value)` result packets to the master, which collects them
/// into task order. Panics if a PE dies mid-run; see [`try_par_map`].
pub fn par_map<J>(job: &J, cfg: &NativeConfig) -> NativeOutcome<J::Out>
where
    J: Job,
    J::Out: Wordsize,
{
    try_par_map(job, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`par_map`], reporting a dead PE as [`EdenIncomplete`] instead of
/// panicking.
pub fn try_par_map<J>(job: &J, cfg: &NativeConfig) -> Result<NativeOutcome<J::Out>, EdenIncomplete>
where
    J: Job,
    J::Out: Wordsize,
{
    let workers = cfg.workers.max(1);
    let shards = cfg.shards.max(1);
    let per_shard = workers / shards;
    let n = job.len();
    if n == 0 {
        return Ok(empty_outcome(cfg));
    }
    let clock = WallClock::start();
    let master_id = workers as u32;
    let ec = Arc::new(EventCount::new());
    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = bounded_with_notify(cfg.chan_cap, Some(Arc::clone(&ec)));
        txs.push(tx);
        rxs.push(rx);
    }
    let (slots, pe_reports, dead_pes, master_report) = std::thread::scope(|s| {
        let handles: Vec<_> = txs
            .into_iter()
            .enumerate()
            .map(|(w, tx)| {
                s.spawn(move || {
                    let mut ep = Endpoint::new(cfg, clock, w as u32);
                    // Shard-aware static deal: task `i` lands on PE
                    // `(i mod shards)·per_shard + (i/shards mod
                    // per_shard)` — round-robin across shards first,
                    // then within the shard, so a short job still
                    // spreads over every shard. PE `w = s·per_shard+j`
                    // therefore owns `i = shards·j + s + k·workers`.
                    // With one shard this is exactly `i mod workers`.
                    let first = shards * (w % per_shard) + w / per_shard;
                    let mine = n.saturating_sub(first).div_ceil(workers) as u64;
                    ep.tbuf.record(NEventKind::RunStart { tasks: mine });
                    for idx in (first..n).step_by(workers) {
                        ep.tbuf.record(NEventKind::ExecStart);
                        let out = job.run(idx);
                        ep.stats.ran += 1;
                        ep.tbuf.record(NEventKind::ExecEnd {
                            count: 1,
                            stolen: false,
                        });
                        if !ep.send(&tx, master_id, "result", Packet::new(idx as u32, out)) {
                            break; // master gone: unwinding already
                        }
                    }
                    ep.tbuf.record(NEventKind::RunEnd);
                    ep.finish()
                })
            })
            .collect();

        let mut master = Endpoint::new(cfg, clock, master_id);
        master.tbuf.record(NEventKind::RunStart { tasks: n as u64 });
        let mut slots: Vec<Option<J::Out>> = (0..n).map(|_| None).collect();
        drain_results(&mut master, &ec, &rxs, |master, w, pkt| {
            master.note_recv(w as u32, pkt.words, "result");
            let prev = slots[pkt.idx as usize].replace(pkt.payload);
            assert!(prev.is_none(), "task {} produced two results", pkt.idx);
        });
        master.tbuf.record(NEventKind::RunEnd);
        let (reports, dead) = try_join_all(handles);
        (slots, reports, dead, master.finish())
    });
    let wall = clock.epoch().elapsed();
    finish_run(cfg, slots, wall, pe_reports, dead_pes, master_report)
}

/// Demand-driven farm: the master primes each worker with `prefetch`
/// task packets, then releases one new task per result received —
/// irregular tasks (nqueens subtrees) flow to whoever is free. With
/// fewer tasks than PEs the surplus workers receive an immediately
/// closed task stream and exit without deadlocking. Panics if a PE
/// dies mid-run; see [`try_master_worker`].
pub fn master_worker<J>(job: &J, cfg: &NativeConfig, prefetch: usize) -> NativeOutcome<J::Out>
where
    J: Job,
    J::Out: Wordsize,
{
    try_master_worker(job, cfg, prefetch).unwrap_or_else(|e| panic!("{e}"))
}

/// [`master_worker`], reporting a dead PE as [`EdenIncomplete`]
/// instead of panicking: tasks already handed to a PE that dies are
/// lost (their indices land in [`EdenIncomplete::missing`]), while
/// the remaining tasks keep flowing to the surviving PEs.
pub fn try_master_worker<J>(
    job: &J,
    cfg: &NativeConfig,
    prefetch: usize,
) -> Result<NativeOutcome<J::Out>, EdenIncomplete>
where
    J: Job,
    J::Out: Wordsize,
{
    let workers = cfg.workers.max(1);
    let n = job.len();
    if n == 0 {
        return Ok(empty_outcome(cfg));
    }
    let prefetch = prefetch.max(1);
    let clock = WallClock::start();
    let master_id = workers as u32;
    let ec = Arc::new(EventCount::new());

    let mut task_txs: Vec<Option<Sender<Packet<()>>>> = Vec::with_capacity(workers);
    let mut task_rxs = Vec::with_capacity(workers);
    let mut res_txs = Vec::with_capacity(workers);
    let mut res_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        // Task channel depth = prefetch: the master never sends more
        // than `prefetch` undelivered tasks, so it never blocks here.
        let (ttx, trx) = bounded_with_notify(prefetch, None);
        task_txs.push(Some(ttx));
        task_rxs.push(trx);
        let (rtx, rrx) = bounded_with_notify(cfg.chan_cap, Some(Arc::clone(&ec)));
        res_txs.push(rtx);
        res_rxs.push(rrx);
    }

    /// Hand the next task to worker `w` (no-op if its stream is
    /// already closed, e.g. because the worker died).
    fn feed(
        master: &mut Endpoint,
        txs: &mut [Option<Sender<Packet<()>>>],
        outstanding: &mut [usize],
        next: &mut usize,
        w: usize,
    ) {
        if let Some(tx) = &txs[w] {
            if master.send(tx, w as u32, "task", Packet::new(*next as u32, ())) {
                outstanding[w] += 1;
                *next += 1;
            } else {
                txs[w] = None;
            }
        }
    }

    let (slots, pe_reports, dead_pes, master_report) = std::thread::scope(|s| {
        let handles: Vec<_> = task_rxs
            .into_iter()
            .zip(res_txs)
            .enumerate()
            .map(|(w, (task_rx, res_tx))| {
                s.spawn(move || {
                    let mut ep = Endpoint::new(cfg, clock, w as u32);
                    ep.tbuf.record(NEventKind::RunStart { tasks: 0 });
                    while let Some(pkt) = ep.recv(&task_rx, master_id, "task") {
                        let idx = pkt.idx as usize;
                        ep.tbuf.record(NEventKind::ExecStart);
                        let out = job.run(idx);
                        ep.stats.ran += 1;
                        ep.tbuf.record(NEventKind::ExecEnd {
                            count: 1,
                            stolen: false,
                        });
                        if !ep.send(&res_tx, master_id, "result", Packet::new(pkt.idx, out)) {
                            break;
                        }
                    }
                    ep.tbuf.record(NEventKind::RunEnd);
                    ep.finish()
                })
            })
            .collect();

        let mut master = Endpoint::new(cfg, clock, master_id);
        master.tbuf.record(NEventKind::RunStart { tasks: n as u64 });
        let mut slots: Vec<Option<J::Out>> = (0..n).map(|_| None).collect();
        let mut outstanding = vec![0usize; workers];
        let mut next = 0usize;
        // Prime every worker, round-robin so a tiny task bag still
        // spreads across PEs; then close streams that got nothing.
        'prime: for _ in 0..prefetch {
            for w in 0..workers {
                if next >= n {
                    break 'prime;
                }
                feed(&mut master, &mut task_txs, &mut outstanding, &mut next, w);
            }
        }
        for w in 0..workers {
            if next >= n && outstanding[w] == 0 {
                task_txs[w] = None;
            }
        }
        drain_results(&mut master, &ec, &res_rxs, |master, w, pkt| {
            master.note_recv(w as u32, pkt.words, "result");
            let prev = slots[pkt.idx as usize].replace(pkt.payload);
            assert!(prev.is_none(), "task {} produced two results", pkt.idx);
            outstanding[w] -= 1;
            if next < n {
                feed(master, &mut task_txs, &mut outstanding, &mut next, w);
            } else if outstanding[w] == 0 {
                task_txs[w] = None;
            }
        });
        master.tbuf.record(NEventKind::RunEnd);
        drop(task_txs);
        let (reports, dead) = try_join_all(handles);
        (slots, reports, dead, master.finish())
    });
    let wall = clock.epoch().elapsed();
    finish_run(cfg, slots, wall, pe_reports, dead_pes, master_report)
}

/// A wave-structured computation for the [`ring`] skeleton: `len`
/// items evolve over `len` waves; wave `k`'s update of every item
/// depends only on the item itself and item `k`'s pre-wave state (the
/// pivot), which the owner broadcasts around the ring.
pub trait RingJob: Sync {
    /// One item's fully-evaluated state (a matrix row, for APSP).
    type Item: Send + Clone + Wordsize;

    /// Number of items — and of waves.
    fn len(&self) -> usize;

    /// True when there is nothing to do.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Item `idx`'s initial state.
    fn init(&self, idx: usize) -> Self::Item;

    /// Item `idx`'s next state given wave `k`'s pivot. Not called for
    /// `idx == k` — the pivot item is carried over unchanged (the
    /// Floyd–Warshall self-update is the identity).
    fn step(&self, item: &Self::Item, idx: usize, pivot: &Self::Item, k: usize) -> Self::Item;
}

/// Ring skeleton: PE `w` owns the contiguous item block
/// `block_share(len, workers, w)` as private memory for the whole
/// run. At wave `k` the owner of item `k` clones its current state as
/// the pivot and sends it to its ring successor; every other PE
/// receives the pivot from its predecessor, forwards it (unless the
/// successor is the owner, which already has it) and updates its
/// block. After the last wave each PE streams its block back to the
/// master. One pivot thus crosses each ring edge at most once per
/// wave — `workers - 1` sends per wave, never `workers²`. Panics if a
/// PE dies mid-run; see [`try_ring`].
pub fn ring<R: RingJob>(job: &R, cfg: &NativeConfig) -> NativeOutcome<R::Item> {
    try_ring(job, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`ring`], reporting dead PEs as [`EdenIncomplete`] instead of
/// panicking. A dying PE severs the ring, so its neighbours' waves
/// cannot complete either: expect a cascade where several (often all)
/// PEs land in [`EdenIncomplete::dead_pes`].
pub fn try_ring<R: RingJob>(
    job: &R,
    cfg: &NativeConfig,
) -> Result<NativeOutcome<R::Item>, EdenIncomplete> {
    let workers = cfg.workers.max(1);
    let n = job.len();
    if n == 0 {
        return Ok(empty_outcome(cfg));
    }
    let clock = WallClock::start();
    let master_id = workers as u32;
    let ec = Arc::new(EventCount::new());

    // owner[k] = PE whose block contains item k, under the same block
    // partition the PEs themselves compute.
    let mut owner = vec![0u32; n];
    for w in 0..workers {
        let (lo, hi) = block_share(n as u64, workers, w);
        for o in owner.iter_mut().take(hi as usize).skip(lo as usize) {
            *o = w as u32;
        }
    }
    let owner = &owner;

    // into[w]: ring edge from PE w-1 into PE w.
    let mut ring_txs: Vec<Option<Sender<Packet<R::Item>>>> = (0..workers).map(|_| None).collect();
    let mut ring_rxs: Vec<Option<Receiver<Packet<R::Item>>>> = (0..workers).map(|_| None).collect();
    for w in 0..workers {
        let (tx, rx) = bounded_with_notify(cfg.chan_cap, None);
        ring_txs[w] = Some(tx);
        ring_rxs[w] = Some(rx);
    }
    let mut res_txs = Vec::with_capacity(workers);
    let mut res_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = bounded_with_notify(cfg.chan_cap, Some(Arc::clone(&ec)));
        res_txs.push(tx);
        res_rxs.push(rx);
    }

    let (slots, pe_reports, dead_pes, master_report) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for (w, res_tx) in res_txs.into_iter().enumerate() {
            let succ = (w + 1) % workers;
            let pred = (w + workers - 1) % workers;
            let ring_tx = ring_txs[succ].take().expect("ring edge claimed twice");
            let ring_rx = ring_rxs[w].take().expect("ring edge claimed twice");
            handles.push(s.spawn(move || {
                let (lo, hi) = block_share(n as u64, workers, w);
                let (lo, hi) = (lo as usize, hi as usize);
                let mut ep = Endpoint::new(cfg, clock, w as u32);
                ep.tbuf.record(NEventKind::RunStart {
                    tasks: ((hi - lo) * n) as u64,
                });
                let mut items: Vec<R::Item> = (lo..hi).map(|i| job.init(i)).collect();
                for k in 0..n {
                    let own = owner[k] as usize;
                    let pivot = if own == w {
                        let pivot = items[k - lo].clone();
                        if workers > 1 {
                            ep.send(
                                &ring_tx,
                                succ as u32,
                                "ring",
                                Packet::new(k as u32, pivot.clone()),
                            );
                        }
                        pivot
                    } else {
                        let pkt = ep
                            .recv(&ring_rx, pred as u32, "ring")
                            .expect("ring closed mid-wave (peer PE died)");
                        debug_assert_eq!(pkt.idx as usize, k, "pivot arrived out of wave order");
                        if succ != own {
                            ep.send(
                                &ring_tx,
                                succ as u32,
                                "ring",
                                Packet::new(k as u32, pkt.payload.clone()),
                            );
                        }
                        pkt.payload
                    };
                    if !items.is_empty() {
                        ep.tbuf.record(NEventKind::ExecStart);
                        for (off, item) in items.iter_mut().enumerate() {
                            let idx = lo + off;
                            if idx != k {
                                *item = job.step(item, idx, &pivot, k);
                            }
                        }
                        ep.stats.ran += (hi - lo) as u64;
                        ep.tbuf.record(NEventKind::ExecEnd {
                            count: (hi - lo) as u32,
                            stolen: false,
                        });
                    }
                }
                drop(ring_tx);
                for (off, item) in items.into_iter().enumerate() {
                    let idx = (lo + off) as u32;
                    if !ep.send(&res_tx, master_id, "result", Packet::new(idx, item)) {
                        break;
                    }
                }
                ep.tbuf.record(NEventKind::RunEnd);
                ep.finish()
            }));
        }

        let mut master = Endpoint::new(cfg, clock, master_id);
        master.tbuf.record(NEventKind::RunStart { tasks: n as u64 });
        let mut slots: Vec<Option<R::Item>> = (0..n).map(|_| None).collect();
        drain_results(&mut master, &ec, &res_rxs, |master, w, pkt| {
            master.note_recv(w as u32, pkt.words, "result");
            let prev = slots[pkt.idx as usize].replace(pkt.payload);
            assert!(prev.is_none(), "item {} returned twice", pkt.idx);
        });
        master.tbuf.record(NEventKind::RunEnd);
        let (reports, dead) = try_join_all(handles);
        (slots, reports, dead, master.finish())
    });
    let wall = clock.epoch().elapsed();
    finish_run(cfg, slots, wall, pe_reports, dead_pes, master_report)
}

/// A fold-as-you-go farm: the reduction view of [`par_map`]. Worker
/// `w` owns the contiguous task block `block_share(len, workers, w)`,
/// folds its results locally in ascending task order, and sends the
/// master **one** partial packet; the master folds the partials in
/// ascending worker order. Because the blocks are contiguous and both
/// folds run left-to-right, the overall grouping is a re-association
/// of the sequential left fold — any *associative* `fold` therefore
/// reproduces the sequential result bit-for-bit, regardless of worker
/// count. Panics if a PE dies mid-run; see [`try_par_map_reduce`].
pub fn par_map_reduce<J, F>(job: &J, cfg: &NativeConfig, fold: F) -> NativeOutcome<J::Out>
where
    J: Job,
    J::Out: Wordsize,
    F: Fn(J::Out, J::Out) -> J::Out + Sync,
{
    try_par_map_reduce(job, cfg, fold).unwrap_or_else(|e| panic!("{e}"))
}

/// [`par_map_reduce`], reporting a dead PE as [`EdenIncomplete`]
/// instead of panicking. On success `values` holds exactly one
/// element — the fold of every task's output (empty for an empty job).
pub fn try_par_map_reduce<J, F>(
    job: &J,
    cfg: &NativeConfig,
    fold: F,
) -> Result<NativeOutcome<J::Out>, EdenIncomplete>
where
    J: Job,
    J::Out: Wordsize,
    F: Fn(J::Out, J::Out) -> J::Out + Sync,
{
    let workers = cfg.workers.max(1);
    let n = job.len();
    if n == 0 {
        return Ok(empty_outcome(cfg));
    }
    let fold = &fold;
    let clock = WallClock::start();
    let master_id = workers as u32;
    let ec = Arc::new(EventCount::new());
    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = bounded_with_notify(cfg.chan_cap, Some(Arc::clone(&ec)));
        txs.push(tx);
        rxs.push(rx);
    }
    let (partials, pe_reports, dead_pes, master_report) = std::thread::scope(|s| {
        let handles: Vec<_> = txs
            .into_iter()
            .enumerate()
            .map(|(w, tx)| {
                s.spawn(move || {
                    let (lo, hi) = block_share(n as u64, workers, w);
                    let (lo, hi) = (lo as usize, hi as usize);
                    let mut ep = Endpoint::new(cfg, clock, w as u32);
                    ep.tbuf.record(NEventKind::RunStart {
                        tasks: (hi - lo) as u64,
                    });
                    let mut acc: Option<J::Out> = None;
                    if lo < hi {
                        ep.tbuf.record(NEventKind::ExecStart);
                        for idx in lo..hi {
                            let out = job.run(idx);
                            acc = Some(match acc {
                                None => out,
                                Some(a) => fold(a, out),
                            });
                        }
                        ep.stats.ran += (hi - lo) as u64;
                        ep.tbuf.record(NEventKind::ExecEnd {
                            count: (hi - lo) as u32,
                            stolen: false,
                        });
                    }
                    if let Some(partial) = acc {
                        ep.send(&tx, master_id, "partial", Packet::new(w as u32, partial));
                    }
                    ep.tbuf.record(NEventKind::RunEnd);
                    ep.finish()
                })
            })
            .collect();

        let mut master = Endpoint::new(cfg, clock, master_id);
        master.tbuf.record(NEventKind::RunStart { tasks: n as u64 });
        let mut partials: Vec<Option<J::Out>> = (0..workers).map(|_| None).collect();
        drain_results(&mut master, &ec, &rxs, |master, w, pkt| {
            master.note_recv(w as u32, pkt.words, "partial");
            let prev = partials[pkt.idx as usize].replace(pkt.payload);
            assert!(prev.is_none(), "worker {} sent two partials", pkt.idx);
        });
        master.tbuf.record(NEventKind::RunEnd);
        let (reports, dead) = try_join_all(handles);
        (partials, reports, dead, master.finish())
    });
    let wall = clock.epoch().elapsed();

    // A worker with a non-empty block that delivered no partial lost
    // its whole block: report those task indices, like the farms do.
    let mut missing = Vec::new();
    for (w, slot) in partials.iter().enumerate() {
        let (lo, hi) = block_share(n as u64, workers, w);
        if slot.is_none() && lo < hi {
            missing.extend(lo..hi);
        }
    }
    if !dead_pes.is_empty() || !missing.is_empty() {
        return Err(EdenIncomplete { dead_pes, missing });
    }
    let total = partials
        .into_iter()
        .flatten()
        .reduce(fold)
        .expect("non-empty job produced no partials");
    Ok(crate::eden::assemble(
        cfg,
        vec![total],
        wall,
        pe_reports,
        master_report,
    ))
}

/// A bulk-synchronous, data-partitioned computation for the
/// [`exchange`] skeleton — the shape iterated simulations (episim's
/// visit/return rounds) need and the farms cannot express: every PE
/// *owns* a partition of the data for the whole run, and at each step
/// boundary the partitions exchange batches all-to-all.
///
/// The skeleton calls [`ExchangeJob::exchange`] `steps()` times per
/// PE. Step `s` receives the batches emitted by step `s - 1` (one per
/// peer, empty-`Default` batches at step 0) and returns one outgoing
/// batch per peer — `out[p]` is delivered to PE `p`'s next step, the
/// self-addressed `out[part]` locally without touching a channel. The
/// batches of the final step flow into [`ExchangeJob::finish`], which
/// folds the partition state into the PE's single result.
pub trait ExchangeJob: Sync {
    /// The partition state a PE owns across all steps.
    type State: Send;
    /// One batch crossing a partition boundary at a step barrier.
    type Batch: Send + Default + Wordsize;
    /// A partition's final result, streamed to the master.
    type Out: Send + Wordsize;

    /// Number of exchange steps (0 is legal: init → finish directly).
    fn steps(&self) -> usize;

    /// Partition `part` of `parts`' initial state.
    fn init(&self, part: usize, parts: usize) -> Self::State;

    /// Run step `step` on the partition: absorb `inbox` (indexed by
    /// sending PE), update `state`, return the outgoing batch per PE
    /// (indexed by receiving PE; must have length `parts`).
    fn exchange(
        &self,
        part: usize,
        parts: usize,
        step: usize,
        state: &mut Self::State,
        inbox: Vec<Self::Batch>,
    ) -> Vec<Self::Batch>;

    /// Fold the partition into its final result, absorbing the last
    /// step's batches.
    fn finish(
        &self,
        part: usize,
        parts: usize,
        state: Self::State,
        inbox: Vec<Self::Batch>,
    ) -> Self::Out;
}

/// Round-barrier exchange skeleton: `workers` PEs each own one
/// partition; each step runs locally and then exchanges one batch per
/// ordered PE pair over dedicated SPSC channels (an empty batch is
/// still framed and sent, so every step delivers exactly one packet
/// per edge and termination is deterministic). Returns one value per
/// partition, in partition order. Panics if a PE dies mid-run; see
/// [`try_exchange`].
pub fn exchange<X: ExchangeJob>(job: &X, cfg: &NativeConfig) -> NativeOutcome<X::Out> {
    try_exchange(job, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`exchange`], reporting dead PEs as [`EdenIncomplete`] instead of
/// panicking. Like [`try_ring`], a dying PE starves its peers' next
/// step, so expect a cascade naming several PEs.
pub fn try_exchange<X: ExchangeJob>(
    job: &X,
    cfg: &NativeConfig,
) -> Result<NativeOutcome<X::Out>, EdenIncomplete> {
    let workers = cfg.workers.max(1);
    let steps = job.steps();
    let clock = WallClock::start();
    let master_id = workers as u32;
    let master_ec = Arc::new(EventCount::new());
    // Each PE parks on its own eventcount, pinged by all its inbound
    // edges — the PE-side mirror of the master's multiplexed drain.
    let pe_ecs: Vec<Arc<EventCount>> = (0..workers).map(|_| Arc::new(EventCount::new())).collect();

    // One SPSC channel per ordered PE pair. At most two packets are
    // ever in flight on an edge (src may run one step ahead of dst,
    // never two: sending step s+2 requires having received dst's step
    // s+1, which dst sent only after consuming src's step s), so
    // capacity 2 makes every send non-blocking.
    let cap = cfg.chan_cap.max(2);
    // `edges[src][dst]`, `None` on the diagonal (no self-channel).
    type EdgeMatrix<T> = Vec<Vec<Option<T>>>;
    let mut edge_txs: EdgeMatrix<Sender<Packet<X::Batch>>> = (0..workers)
        .map(|_| (0..workers).map(|_| None).collect())
        .collect();
    let mut edge_rxs: EdgeMatrix<Receiver<Packet<X::Batch>>> = (0..workers)
        .map(|_| (0..workers).map(|_| None).collect())
        .collect();
    for src in 0..workers {
        for dst in 0..workers {
            if src == dst {
                continue;
            }
            let (tx, rx) = bounded_with_notify(cap, Some(Arc::clone(&pe_ecs[dst])));
            edge_txs[src][dst] = Some(tx);
            edge_rxs[dst][src] = Some(rx);
        }
    }
    let mut res_txs = Vec::with_capacity(workers);
    let mut res_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = bounded_with_notify(cfg.chan_cap, Some(Arc::clone(&master_ec)));
        res_txs.push(tx);
        res_rxs.push(rx);
    }

    let (slots, pe_reports, dead_pes, master_report) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for (w, res_tx) in res_txs.into_iter().enumerate() {
            let txs: Vec<Option<Sender<Packet<X::Batch>>>> = std::mem::take(&mut edge_txs[w]);
            let rxs: Vec<Option<Receiver<Packet<X::Batch>>>> = std::mem::take(&mut edge_rxs[w]);
            let ec = Arc::clone(&pe_ecs[w]);
            handles.push(s.spawn(move || {
                let mut ep = Endpoint::new(cfg, clock, w as u32);
                ep.tbuf.record(NEventKind::RunStart {
                    tasks: steps as u64 + 1,
                });
                let mut state = job.init(w, workers);
                let mut inbox: Vec<X::Batch> = (0..workers).map(|_| X::Batch::default()).collect();
                for step in 0..steps {
                    ep.tbuf.record(NEventKind::ExecStart);
                    let out = job.exchange(w, workers, step, &mut state, inbox);
                    ep.stats.ran += 1;
                    ep.tbuf.record(NEventKind::ExecEnd {
                        count: 1,
                        stolen: false,
                    });
                    assert_eq!(
                        out.len(),
                        workers,
                        "exchange step {step} on PE {w}: one outgoing batch per PE required"
                    );
                    inbox = (0..workers).map(|_| X::Batch::default()).collect();
                    for (dst, batch) in out.into_iter().enumerate() {
                        if dst == w {
                            inbox[w] = batch;
                            continue;
                        }
                        let tx = txs[dst].as_ref().expect("edge exists for every peer");
                        let sent =
                            ep.send(tx, dst as u32, "exchange", Packet::new(step as u32, batch));
                        assert!(sent, "exchange peer PE {dst} died (channel closed)");
                    }
                    recv_step(&mut ep, &ec, &rxs, w, step, &mut inbox);
                }
                ep.tbuf.record(NEventKind::ExecStart);
                let out = job.finish(w, workers, state, inbox);
                ep.stats.ran += 1;
                ep.tbuf.record(NEventKind::ExecEnd {
                    count: 1,
                    stolen: false,
                });
                ep.send(&res_tx, master_id, "result", Packet::new(w as u32, out));
                ep.tbuf.record(NEventKind::RunEnd);
                ep.finish()
            }));
        }

        let mut master = Endpoint::new(cfg, clock, master_id);
        master.tbuf.record(NEventKind::RunStart {
            tasks: workers as u64,
        });
        let mut slots: Vec<Option<X::Out>> = (0..workers).map(|_| None).collect();
        drain_results(&mut master, &master_ec, &res_rxs, |master, w, pkt| {
            master.note_recv(w as u32, pkt.words, "result");
            let prev = slots[pkt.idx as usize].replace(pkt.payload);
            assert!(prev.is_none(), "partition {} returned twice", pkt.idx);
        });
        master.tbuf.record(NEventKind::RunEnd);
        let (reports, dead) = try_join_all(handles);
        (slots, reports, dead, master.finish())
    });
    let wall = clock.epoch().elapsed();
    finish_run(cfg, slots, wall, pe_reports, dead_pes, master_report)
}

/// One PE's barrier wait inside [`try_exchange`]: collect exactly one
/// step-`step` packet from every peer, polling only the edges still
/// pending (an edge's next packet is always the oldest step it has
/// not delivered, so a pending edge's head packet *is* this step's)
/// and parking on the PE's eventcount while nothing is ready.
fn recv_step<B: Send + Wordsize>(
    ep: &mut Endpoint,
    ec: &EventCount,
    rxs: &[Option<Receiver<Packet<B>>>],
    me: usize,
    step: usize,
    inbox: &mut [B],
) {
    let mut pending: Vec<bool> = rxs.iter().map(|rx| rx.is_some()).collect();
    loop {
        let mut progress = false;
        for (src, rx) in rxs.iter().enumerate() {
            if !pending[src] {
                continue;
            }
            let rx = rx.as_ref().expect("pending edge has a receiver");
            if let Some(pkt) = rx.try_recv() {
                assert_eq!(
                    pkt.idx as usize, step,
                    "PE {me}: batch from PE {src} arrived out of step order"
                );
                ep.note_recv(src as u32, pkt.words, "exchange");
                inbox[src] = pkt.payload;
                pending[src] = false;
                progress = true;
            } else {
                assert!(
                    !rx.is_closed(),
                    "PE {me}: exchange peer PE {src} died mid-step"
                );
            }
        }
        if pending.iter().all(|p| !p) {
            return;
        }
        if !progress {
            ep.stats.recv_blocks += 1;
            ep.tbuf.record(NEventKind::BlockRecvAny);
            ec.park_if(|| {
                !rxs.iter()
                    .zip(&pending)
                    .any(|(rx, p)| *p && rx.as_ref().is_some_and(|rx| rx.poll_ready()))
            });
            ep.tbuf.record(NEventKind::Unblock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rph_trace::Counters;

    struct Squares(usize);

    impl Job for Squares {
        type Out = i64;
        fn len(&self) -> usize {
            self.0
        }
        fn run(&self, idx: usize) -> i64 {
            (idx as i64) * (idx as i64)
        }
    }

    fn expected(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| i * i).collect()
    }

    const PES: [usize; 6] = [1, 2, 3, 4, 5, 8];

    fn check_farm_stats(out: &NativeOutcome<i64>, n: u64, workers: usize) {
        assert_eq!(out.stats.tasks_run, n);
        assert_eq!(out.stats.tasks_local, n);
        assert_eq!(out.stats.tasks_stolen, 0);
        assert_eq!(out.stats.per_worker.len(), workers);
        assert_eq!(out.stats.per_worker.iter().sum::<u64>(), n);
        // Farms: one result packet per task, plus (master_worker) one
        // task packet per task — and conservation on a finished run.
        assert_eq!(out.stats.msgs_sent, out.stats.msgs_recv);
        assert!(out.stats.msgs_sent >= n);
        assert!(out.stats.words_sent > 0);
        assert_eq!(out.stats.steal_ops, 0);
        assert_eq!(out.stats.splits, 0);
    }

    #[test]
    fn par_map_matches_oracle_at_all_pe_counts() {
        for w in PES {
            let cfg = NativeConfig::new(w);
            let out = par_map(&Squares(257), &cfg);
            assert_eq!(out.values, expected(257), "workers={w}");
            check_farm_stats(&out, 257, w);
            // Static deal: PE w gets every workers-th task.
            let want: Vec<u64> = (0..w)
                .map(|i| 257usize.saturating_sub(i).div_ceil(w) as u64)
                .collect();
            assert_eq!(out.stats.per_worker, want, "workers={w}");
        }
    }

    #[test]
    fn master_worker_matches_oracle_at_all_pe_counts() {
        for w in PES {
            for prefetch in [1, 2, 4] {
                let cfg = NativeConfig::new(w);
                let out = master_worker(&Squares(101), &cfg, prefetch);
                assert_eq!(out.values, expected(101), "workers={w} prefetch={prefetch}");
                check_farm_stats(&out, 101, w);
            }
        }
    }

    /// Shard-aware static deal: task `i` goes to shard `i mod shards`
    /// first, then round-robins within the shard — so the per-PE task
    /// counts follow the interleaved formula, result packets from
    /// shard-1 PEs to the (shard-0) master count as cross-shard words,
    /// and a single-shard run is the classic `i mod workers` deal with
    /// zero remote words.
    #[test]
    fn sharded_par_map_spreads_tasks_across_shards() {
        let n = 257usize;
        let flat = par_map(&Squares(n), &NativeConfig::new(4));
        assert_eq!(flat.stats.remote_words, 0);
        let cfg = NativeConfig::new(4).with_topology(2, 2);
        let out = par_map(&Squares(n), &cfg);
        assert_eq!(out.values, expected(n));
        // PE w = s·per_shard + j owns i = shards·j + s + k·workers.
        let want: Vec<u64> = (0..4)
            .map(|w| {
                let first = 2 * (w % 2) + w / 2;
                n.saturating_sub(first).div_ceil(4) as u64
            })
            .collect();
        assert_eq!(out.stats.per_worker, want);
        // Shard 1's PEs (2 and 3) stream all their results across the
        // shard boundary to the master.
        assert!(out.stats.remote_words > 0);
        assert!(out.stats.remote_words < out.stats.words_sent);
    }

    /// The oversubscription satellite: many more PEs than the
    /// (single-core CI) host has cores. The demand-driven farm must
    /// complete without deadlock with results bit-identical to the
    /// 1-PE run, and its block counters must stay conservation-sane.
    #[test]
    fn master_worker_oversubscribed_many_pes_on_one_core() {
        let one = master_worker(&Squares(200), &NativeConfig::new(1), 2);
        for pes in [16usize, 32, 64] {
            let cfg = NativeConfig::new(pes);
            let out = master_worker(&Squares(200), &cfg, 2);
            assert_eq!(out.values, one.values, "pes={pes}");
            check_farm_stats(&out, 200, pes);
            // Block episodes are bounded by message traffic plus a
            // small per-PE slack (end-of-stream waits, and the
            // master's 10 ms park safety timeout re-counting a long
            // quiet period) — not by wall time.
            assert!(
                out.stats.recv_blocks <= out.stats.msgs_recv + 10 * pes as u64 + 100,
                "pes={pes}: {:?}",
                out.stats
            );
            assert!(
                out.stats.send_blocks <= out.stats.msgs_sent,
                "pes={pes}: {:?}",
                out.stats
            );
        }
    }

    #[test]
    fn master_worker_fewer_tasks_than_pes_does_not_deadlock() {
        // The required stress shape: surplus PEs must see their task
        // stream close immediately and exit.
        for n in [1usize, 2, 3, 7] {
            for w in [4usize, 8] {
                let out = master_worker(&Squares(n), &NativeConfig::new(w), 2);
                assert_eq!(out.values, expected(n), "n={n} workers={w}");
                assert_eq!(out.stats.tasks_run, n as u64);
            }
        }
    }

    #[test]
    fn tiny_channels_engage_backpressure_without_deadlock() {
        // Capacity-1 channels everywhere: every skeleton must still
        // complete, with senders genuinely blocking along the way.
        let cfg = NativeConfig::new(4).with_chan_cap(1);
        let out = par_map(&Squares(400), &cfg);
        assert_eq!(out.values, expected(400));
        let out = master_worker(&Squares(400), &cfg, 1);
        assert_eq!(out.values, expected(400));
    }

    #[test]
    fn empty_and_single_task_jobs() {
        let cfg = NativeConfig::new(4);
        let out = par_map(&Squares(0), &cfg);
        assert!(out.values.is_empty());
        assert_eq!(out.stats.per_worker, vec![0; 4]);
        assert_eq!(out.stats.msgs_sent, 0);
        let out = par_map(&Squares(1), &cfg);
        assert_eq!(out.values, vec![0]);
        let out = master_worker(&Squares(1), &cfg, 4);
        assert_eq!(out.values, vec![0]);
    }

    /// Task `i` as a 2×2 matrix; the fold is the wrapping matrix
    /// product — associative but **not** commutative, so any
    /// out-of-order or re-grouped-across-gaps folding is caught.
    struct Mats(usize);

    impl Job for Mats {
        type Out = Vec<i64>;
        fn len(&self) -> usize {
            self.0
        }
        fn run(&self, idx: usize) -> Vec<i64> {
            let i = idx as i64;
            vec![i + 1, i * i + 3, 2 * i + 1, i + 7]
        }
    }

    fn matmul2(a: Vec<i64>, b: Vec<i64>) -> Vec<i64> {
        vec![
            a[0].wrapping_mul(b[0])
                .wrapping_add(a[1].wrapping_mul(b[2])),
            a[0].wrapping_mul(b[1])
                .wrapping_add(a[1].wrapping_mul(b[3])),
            a[2].wrapping_mul(b[0])
                .wrapping_add(a[3].wrapping_mul(b[2])),
            a[2].wrapping_mul(b[1])
                .wrapping_add(a[3].wrapping_mul(b[3])),
        ]
    }

    #[test]
    fn par_map_reduce_matches_sequential_fold_bit_for_bit() {
        // A non-commutative (but associative) fold: contiguous blocks
        // + in-order folding must reproduce the sequential left fold
        // exactly, at every PE count — including more PEs than tasks.
        let n = 97;
        let seq = (0..n).map(|i| Mats(n).run(i)).reduce(matmul2).unwrap();
        for w in [1, 2, 3, 4, 5, 8, 100] {
            let cfg = NativeConfig::new(w);
            let out = par_map_reduce(&Mats(n), &cfg, matmul2);
            assert_eq!(out.values, vec![seq.clone()], "workers={w}");
            assert_eq!(out.stats.tasks_run, n as u64, "workers={w}");
            // One partial packet per non-empty block, nothing more.
            assert!(out.stats.msgs_sent <= w as u64, "workers={w}");
            assert_eq!(out.stats.msgs_sent, out.stats.msgs_recv, "workers={w}");
        }
    }

    #[test]
    fn par_map_reduce_empty_job() {
        let out = par_map_reduce(&Squares(0), &NativeConfig::new(4), |a, b| a + b);
        assert!(out.values.is_empty());
        assert_eq!(out.stats.msgs_sent, 0);
    }

    #[test]
    fn par_map_reduce_dead_pe_is_typed_error() {
        struct Exploding;
        impl Job for Exploding {
            type Out = i64;
            fn len(&self) -> usize {
                8
            }
            fn run(&self, idx: usize) -> i64 {
                assert!(idx != 5, "boom");
                idx as i64
            }
        }
        let err = try_par_map_reduce(&Exploding, &NativeConfig::new(4), |a, b| a + b)
            .expect_err("a dead PE must fail the run");
        assert!(!err.dead_pes.is_empty());
        assert!(err.missing.contains(&5), "{err:?}");
    }

    /// Toy BSP computation with genuinely order- and partner-dependent
    /// batches: at each step every partition sends each peer the sum
    /// of its current cells times the peer index, then adds what it
    /// received. Any lost, duplicated or mis-stepped batch changes the
    /// result.
    struct ToyExchange {
        cells: usize,
        steps: usize,
    }

    impl ExchangeJob for ToyExchange {
        type State = Vec<i64>;
        type Batch = Vec<i64>;
        type Out = Vec<i64>;
        fn steps(&self) -> usize {
            self.steps
        }
        fn init(&self, part: usize, parts: usize) -> Vec<i64> {
            let (lo, hi) = block_share(self.cells as u64, parts, part);
            (lo as i64..hi as i64).map(|i| i * i + 1).collect()
        }
        fn exchange(
            &self,
            part: usize,
            parts: usize,
            step: usize,
            state: &mut Vec<i64>,
            inbox: Vec<Vec<i64>>,
        ) -> Vec<Vec<i64>> {
            for (src, batch) in inbox.iter().enumerate() {
                for (cell, add) in state.iter_mut().zip(batch) {
                    *cell = cell.wrapping_add(add.wrapping_mul(1 + src as i64));
                }
            }
            let sum: i64 = state.iter().sum();
            (0..parts)
                .map(|dst| {
                    if dst == part {
                        Vec::new()
                    } else {
                        vec![sum.wrapping_mul((dst + step) as i64); 2]
                    }
                })
                .collect()
        }
        fn finish(
            &self,
            _part: usize,
            _parts: usize,
            mut state: Vec<i64>,
            inbox: Vec<Vec<i64>>,
        ) -> Vec<i64> {
            for (src, batch) in inbox.iter().enumerate() {
                for (cell, add) in state.iter_mut().zip(batch) {
                    *cell = cell.wrapping_add(add.wrapping_mul(1 + src as i64));
                }
            }
            state
        }
    }

    /// Single-threaded oracle: run every partition's steps in lockstep.
    fn exchange_oracle(job: &ToyExchange, parts: usize) -> Vec<i64> {
        let mut states: Vec<Vec<i64>> = (0..parts).map(|p| job.init(p, parts)).collect();
        let mut inboxes: Vec<Vec<Vec<i64>>> = (0..parts).map(|_| vec![Vec::new(); parts]).collect();
        for step in 0..job.steps() {
            let mut next: Vec<Vec<Vec<i64>>> =
                (0..parts).map(|_| vec![Vec::new(); parts]).collect();
            for p in 0..parts {
                let out = job.exchange(
                    p,
                    parts,
                    step,
                    &mut states[p],
                    std::mem::take(&mut inboxes[p]),
                );
                for (dst, batch) in out.into_iter().enumerate() {
                    next[dst][p] = batch;
                }
            }
            inboxes = next;
        }
        (0..parts)
            .flat_map(|p| {
                job.finish(
                    p,
                    parts,
                    std::mem::take(&mut states[p]),
                    std::mem::take(&mut inboxes[p]),
                )
            })
            .collect()
    }

    #[test]
    fn exchange_matches_lockstep_oracle_at_all_pe_counts() {
        for w in PES {
            let job = ToyExchange {
                cells: 23,
                steps: 5,
            };
            let want = exchange_oracle(&job, w);
            let out = exchange(&job, &NativeConfig::new(w));
            let got: Vec<i64> = out.values.into_iter().flatten().collect();
            assert_eq!(got, want, "workers={w}");
            // One packet per ordered pair per step, plus one result
            // packet per PE; all conserved.
            let edges = (w * (w - 1)) as u64;
            assert_eq!(out.stats.msgs_sent, 5 * edges + w as u64, "workers={w}");
            assert_eq!(out.stats.msgs_sent, out.stats.msgs_recv, "workers={w}");
            assert_eq!(out.stats.tasks_run, (5 + 1) * w as u64, "workers={w}");
        }
    }

    #[test]
    fn exchange_zero_steps_and_tiny_channels() {
        let job = ToyExchange { cells: 9, steps: 0 };
        let out = exchange(&job, &NativeConfig::new(3));
        let got: Vec<i64> = out.values.into_iter().flatten().collect();
        assert_eq!(got, exchange_oracle(&job, 3));
        // chan_cap 1 is clamped to 2 internally; must still complete.
        let job = ToyExchange {
            cells: 16,
            steps: 7,
        };
        let out = exchange(&job, &NativeConfig::new(4).with_chan_cap(1));
        let got: Vec<i64> = out.values.into_iter().flatten().collect();
        assert_eq!(got, exchange_oracle(&job, 4));
    }

    #[test]
    fn exchange_sharded_topology_counts_remote_words() {
        let job = ToyExchange {
            cells: 24,
            steps: 4,
        };
        let flat = exchange(&job, &NativeConfig::new(4));
        assert_eq!(flat.stats.remote_words, 0);
        let out = exchange(&job, &NativeConfig::new(4).with_topology(2, 2));
        let got: Vec<i64> = out.values.into_iter().flatten().collect();
        assert_eq!(got, exchange_oracle(&job, 4));
        // Cross-shard edges carry real batch traffic.
        assert!(out.stats.remote_words > 0);
        assert!(out.stats.remote_words < out.stats.words_sent);
    }

    /// Toy wave computation with order-dependent updates: any
    /// deviation from strict wave order or from the block ownership
    /// contract changes the result.
    struct ToyRing(usize);

    impl RingJob for ToyRing {
        type Item = Vec<f64>;
        fn len(&self) -> usize {
            self.0
        }
        fn init(&self, idx: usize) -> Vec<f64> {
            vec![idx as f64, (idx * idx) as f64 + 1.0, 3.0]
        }
        fn step(&self, item: &Vec<f64>, idx: usize, pivot: &Vec<f64>, k: usize) -> Vec<f64> {
            item.iter()
                .zip(pivot)
                .map(|(a, b)| a + b * ((k + 1) as f64) + idx as f64 * 0.5)
                .collect()
        }
    }

    fn ring_oracle(job: &ToyRing) -> Vec<Vec<f64>> {
        let n = job.len();
        let mut items: Vec<Vec<f64>> = (0..n).map(|i| job.init(i)).collect();
        for k in 0..n {
            let pivot = items[k].clone();
            for (idx, item) in items.iter_mut().enumerate() {
                if idx != k {
                    *item = job.step(item, idx, &pivot, k);
                }
            }
        }
        items
    }

    #[test]
    fn ring_matches_sequential_oracle_bit_for_bit() {
        let job = ToyRing(23);
        let want = ring_oracle(&job);
        for w in PES {
            let out = ring(&job, &NativeConfig::new(w));
            assert_eq!(out.values, want, "workers={w}");
            assert_eq!(out.stats.tasks_run, 23 * 23, "workers={w}");
            assert_eq!(out.stats.msgs_sent, out.stats.msgs_recv, "workers={w}");
            if w == 1 {
                // Lone PE: no ring traffic at all, only result returns.
                assert_eq!(out.stats.msgs_sent, 23);
            }
        }
    }

    #[test]
    fn ring_with_more_pes_than_items_still_works() {
        let job = ToyRing(3);
        let want = ring_oracle(&job);
        let out = ring(&job, &NativeConfig::new(8));
        assert_eq!(out.values, want);
        assert_eq!(out.stats.tasks_run, 9);
    }

    #[test]
    fn traced_run_reconciles_events_with_counters() {
        for (name, out) in [
            (
                "par_map",
                par_map(&Squares(64), &NativeConfig::new(3).with_trace()),
            ),
            (
                "master_worker",
                master_worker(&Squares(64), &NativeConfig::new(3).with_trace(), 2),
            ),
            (
                "ring",
                ring(&ToyRing(16), &NativeConfig::new(3).with_trace()).map_values(),
            ),
        ] {
            assert_eq!(out.trace_dropped, 0, "{name}");
            let tracer = out.trace.as_ref().expect("traced run must carry a trace");
            assert_eq!(tracer.caps(), 4, "{name}: 3 PEs + master");
            let c = Counters::from_tracer(tracer);
            assert_eq!(c.messages_sent, out.stats.msgs_sent, "{name}");
            assert_eq!(c.messages_received, out.stats.msgs_recv, "{name}");
            assert_eq!(c.message_words, out.stats.words_sent, "{name}");
            assert_eq!(c.native_send_blocks, out.stats.send_blocks, "{name}");
            assert_eq!(c.native_recv_blocks, out.stats.recv_blocks, "{name}");
            assert_eq!(c.native_tasks, out.stats.tasks_run, "{name}");
            assert_eq!(c.native_tasks_stolen, 0, "{name}");
        }
    }

    /// Erase the value type so differently-typed outcomes share one
    /// reconciliation loop above.
    trait MapValues {
        fn map_values(self) -> NativeOutcome<i64>;
    }
    impl MapValues for NativeOutcome<Vec<f64>> {
        fn map_values(self) -> NativeOutcome<i64> {
            NativeOutcome {
                values: self.values.iter().map(|v| v.len() as i64).collect(),
                wall: self.wall,
                stats: self.stats,
                trace: self.trace,
                trace_dropped: self.trace_dropped,
            }
        }
    }

    #[test]
    fn pe_panic_propagates_to_caller() {
        struct Exploding;
        impl Job for Exploding {
            type Out = i64;
            fn len(&self) -> usize {
                8
            }
            fn run(&self, idx: usize) -> i64 {
                assert!(idx != 5, "boom");
                idx as i64
            }
        }
        for skel in [Skeleton::ParMap, Skeleton::MasterWorker { prefetch: 2 }] {
            let r = std::panic::catch_unwind(|| skel.run(&Exploding, &NativeConfig::new(4)));
            assert!(r.is_err(), "{skel:?}: PE panic must reach the caller");
        }
    }

    /// The PR 6 bugfix contract: through the fallible entry points a
    /// dying PE becomes a typed error naming the dead PE and the task
    /// indices whose results were lost — no panic on the caller, no
    /// silent holes.
    #[test]
    fn dead_pe_surfaces_as_typed_error_with_lost_tasks() {
        struct Exploding;
        impl Job for Exploding {
            type Out = i64;
            fn len(&self) -> usize {
                8
            }
            fn run(&self, idx: usize) -> i64 {
                assert!(idx != 5, "boom");
                idx as i64
            }
        }
        for skel in [Skeleton::ParMap, Skeleton::MasterWorker { prefetch: 2 }] {
            let err = skel
                .try_run(&Exploding, &NativeConfig::new(4))
                .expect_err("a dead PE must fail the run");
            assert!(!err.dead_pes.is_empty(), "{skel:?}: {err:?}");
            assert!(
                err.missing.contains(&5),
                "{skel:?}: the panicking task's result must be reported lost: {err:?}"
            );
        }
        // par_map's static deal pins task 5 to PE 5 mod 4 = 1.
        let err = try_par_map(&Exploding, &NativeConfig::new(4)).unwrap_err();
        assert_eq!(err.dead_pes, vec![1]);
    }
}
