//! The native Eden backend's algorithmic skeletons.
//!
//! Eden programs are written against skeletons — higher-order process
//! schemes — and the paper's workloads use exactly three shapes, all
//! implemented here on real threads over the bounded channels of
//! [`crate::channel`]:
//!
//! * [`par_map`] — the static farm: task `i` is assigned to PE
//!   `i mod workers` up front, each PE streams its result packets back
//!   to the master. Right for regular work (sumEuler chunks, matMul
//!   blocks) where a static deal is already balanced.
//! * [`master_worker`] — the demand-driven farm (the paper's answer
//!   to irregular tasks like nqueens): the master keeps `prefetch`
//!   task packets in flight per worker and hands out the next task
//!   only when a result comes back, so fast workers get more tasks.
//! * [`ring`] — PEs own contiguous blocks of items and pass a pivot
//!   packet around the ring once per wave (APSP's Floyd–Warshall
//!   rounds, the paper's §III.D ring skeleton).
//!
//! All three return the same [`NativeOutcome`] the steal backend
//! produces — values in task order, wall time, counters, and (when
//! tracing) one [`rph_trace::Tracer`] row per PE plus one for the
//! master — so every consumer (benches, differential tests, timeline
//! rendering) treats the two backends uniformly.
//!
//! Panic behaviour: a panicking PE drops its channel endpoints, which
//! unblocks its peers (their sends/recvs observe the close) and lets
//! the master's drain terminate. The fallible entry points
//! ([`try_par_map`], [`try_master_worker`], [`try_ring`]) then report
//! a typed [`EdenIncomplete`] naming the dead PEs and the task
//! indices whose results were lost; the infallible wrappers panic on
//! that error for one-shot callers.

use crate::channel::{bounded_with_notify, Packet, Receiver, Sender, Wordsize};
use crate::eden::{drain_results, empty_outcome, finish_run, Endpoint, PeReport, PeStats};
use crate::error::EdenIncomplete;
use crate::executor::{Job, NativeConfig, NativeOutcome};
use crate::park::EventCount;
use crate::pool::block_share;
use crate::trace::NEventKind;
use rph_trace::WallClock;
use std::sync::Arc;

/// Which farm skeleton a flat [`Job`] should run under on the Eden
/// backend. (The [`ring`] skeleton is not a farm — it needs the
/// richer [`RingJob`] shape — so it is not representable here.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skeleton {
    /// Static farm: [`par_map`].
    ParMap,
    /// Demand-driven farm with the given per-worker prefetch depth:
    /// [`master_worker`].
    MasterWorker {
        /// Task packets kept in flight per worker (clamped to ≥ 1).
        prefetch: usize,
    },
}

impl Skeleton {
    /// Run `job` under this skeleton, panicking if a PE dies mid-run
    /// (the one-shot contract; long-running callers use
    /// [`Self::try_run`]).
    pub fn run<J>(self, job: &J, cfg: &NativeConfig) -> NativeOutcome<J::Out>
    where
        J: Job,
        J::Out: Wordsize,
    {
        self.try_run(job, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run `job` under this skeleton, reporting a dead PE as a typed
    /// [`EdenIncomplete`] instead of panicking.
    pub fn try_run<J>(
        self,
        job: &J,
        cfg: &NativeConfig,
    ) -> Result<NativeOutcome<J::Out>, EdenIncomplete>
    where
        J: Job,
        J::Out: Wordsize,
    {
        match self {
            Skeleton::ParMap => try_par_map(job, cfg),
            Skeleton::MasterWorker { prefetch } => try_master_worker(job, cfg, prefetch),
        }
    }
}

/// Join the PE threads, swallowing (already-hooked) panics: a dead
/// PE contributes an empty report and its id to the returned list,
/// so the caller can surface a typed error instead of unwinding.
fn try_join_all(
    handles: Vec<std::thread::ScopedJoinHandle<'_, PeReport>>,
) -> (Vec<PeReport>, Vec<u32>) {
    let mut dead = Vec::new();
    let reports = handles
        .into_iter()
        .enumerate()
        .map(|(w, h)| match h.join() {
            Ok(rep) => rep,
            Err(_) => {
                dead.push(w as u32);
                PeReport {
                    stats: PeStats::default(),
                    events: Vec::new(),
                    dropped: 0,
                }
            }
        })
        .collect();
    (reports, dead)
}

/// Static farm: task `i` runs on PE `i mod workers`; every PE streams
/// `(index, value)` result packets to the master, which collects them
/// into task order. Panics if a PE dies mid-run; see [`try_par_map`].
pub fn par_map<J>(job: &J, cfg: &NativeConfig) -> NativeOutcome<J::Out>
where
    J: Job,
    J::Out: Wordsize,
{
    try_par_map(job, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`par_map`], reporting a dead PE as [`EdenIncomplete`] instead of
/// panicking.
pub fn try_par_map<J>(job: &J, cfg: &NativeConfig) -> Result<NativeOutcome<J::Out>, EdenIncomplete>
where
    J: Job,
    J::Out: Wordsize,
{
    let workers = cfg.workers.max(1);
    let shards = cfg.shards.max(1);
    let per_shard = workers / shards;
    let n = job.len();
    if n == 0 {
        return Ok(empty_outcome(cfg));
    }
    let clock = WallClock::start();
    let master_id = workers as u32;
    let ec = Arc::new(EventCount::new());
    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = bounded_with_notify(cfg.chan_cap, Some(Arc::clone(&ec)));
        txs.push(tx);
        rxs.push(rx);
    }
    let (slots, pe_reports, dead_pes, master_report) = std::thread::scope(|s| {
        let handles: Vec<_> = txs
            .into_iter()
            .enumerate()
            .map(|(w, tx)| {
                s.spawn(move || {
                    let mut ep = Endpoint::new(cfg, clock, w as u32);
                    // Shard-aware static deal: task `i` lands on PE
                    // `(i mod shards)·per_shard + (i/shards mod
                    // per_shard)` — round-robin across shards first,
                    // then within the shard, so a short job still
                    // spreads over every shard. PE `w = s·per_shard+j`
                    // therefore owns `i = shards·j + s + k·workers`.
                    // With one shard this is exactly `i mod workers`.
                    let first = shards * (w % per_shard) + w / per_shard;
                    let mine = n.saturating_sub(first).div_ceil(workers) as u64;
                    ep.tbuf.record(NEventKind::RunStart { tasks: mine });
                    for idx in (first..n).step_by(workers) {
                        ep.tbuf.record(NEventKind::ExecStart);
                        let out = job.run(idx);
                        ep.stats.ran += 1;
                        ep.tbuf.record(NEventKind::ExecEnd {
                            count: 1,
                            stolen: false,
                        });
                        if !ep.send(&tx, master_id, "result", Packet::new(idx as u32, out)) {
                            break; // master gone: unwinding already
                        }
                    }
                    ep.tbuf.record(NEventKind::RunEnd);
                    ep.finish()
                })
            })
            .collect();

        let mut master = Endpoint::new(cfg, clock, master_id);
        master.tbuf.record(NEventKind::RunStart { tasks: n as u64 });
        let mut slots: Vec<Option<J::Out>> = (0..n).map(|_| None).collect();
        drain_results(&mut master, &ec, &rxs, |master, w, pkt| {
            master.note_recv(w as u32, pkt.words, "result");
            let prev = slots[pkt.idx as usize].replace(pkt.payload);
            assert!(prev.is_none(), "task {} produced two results", pkt.idx);
        });
        master.tbuf.record(NEventKind::RunEnd);
        let (reports, dead) = try_join_all(handles);
        (slots, reports, dead, master.finish())
    });
    let wall = clock.epoch().elapsed();
    finish_run(cfg, slots, wall, pe_reports, dead_pes, master_report)
}

/// Demand-driven farm: the master primes each worker with `prefetch`
/// task packets, then releases one new task per result received —
/// irregular tasks (nqueens subtrees) flow to whoever is free. With
/// fewer tasks than PEs the surplus workers receive an immediately
/// closed task stream and exit without deadlocking. Panics if a PE
/// dies mid-run; see [`try_master_worker`].
pub fn master_worker<J>(job: &J, cfg: &NativeConfig, prefetch: usize) -> NativeOutcome<J::Out>
where
    J: Job,
    J::Out: Wordsize,
{
    try_master_worker(job, cfg, prefetch).unwrap_or_else(|e| panic!("{e}"))
}

/// [`master_worker`], reporting a dead PE as [`EdenIncomplete`]
/// instead of panicking: tasks already handed to a PE that dies are
/// lost (their indices land in [`EdenIncomplete::missing`]), while
/// the remaining tasks keep flowing to the surviving PEs.
pub fn try_master_worker<J>(
    job: &J,
    cfg: &NativeConfig,
    prefetch: usize,
) -> Result<NativeOutcome<J::Out>, EdenIncomplete>
where
    J: Job,
    J::Out: Wordsize,
{
    let workers = cfg.workers.max(1);
    let n = job.len();
    if n == 0 {
        return Ok(empty_outcome(cfg));
    }
    let prefetch = prefetch.max(1);
    let clock = WallClock::start();
    let master_id = workers as u32;
    let ec = Arc::new(EventCount::new());

    let mut task_txs: Vec<Option<Sender<Packet<()>>>> = Vec::with_capacity(workers);
    let mut task_rxs = Vec::with_capacity(workers);
    let mut res_txs = Vec::with_capacity(workers);
    let mut res_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        // Task channel depth = prefetch: the master never sends more
        // than `prefetch` undelivered tasks, so it never blocks here.
        let (ttx, trx) = bounded_with_notify(prefetch, None);
        task_txs.push(Some(ttx));
        task_rxs.push(trx);
        let (rtx, rrx) = bounded_with_notify(cfg.chan_cap, Some(Arc::clone(&ec)));
        res_txs.push(rtx);
        res_rxs.push(rrx);
    }

    /// Hand the next task to worker `w` (no-op if its stream is
    /// already closed, e.g. because the worker died).
    fn feed(
        master: &mut Endpoint,
        txs: &mut [Option<Sender<Packet<()>>>],
        outstanding: &mut [usize],
        next: &mut usize,
        w: usize,
    ) {
        if let Some(tx) = &txs[w] {
            if master.send(tx, w as u32, "task", Packet::new(*next as u32, ())) {
                outstanding[w] += 1;
                *next += 1;
            } else {
                txs[w] = None;
            }
        }
    }

    let (slots, pe_reports, dead_pes, master_report) = std::thread::scope(|s| {
        let handles: Vec<_> = task_rxs
            .into_iter()
            .zip(res_txs)
            .enumerate()
            .map(|(w, (task_rx, res_tx))| {
                s.spawn(move || {
                    let mut ep = Endpoint::new(cfg, clock, w as u32);
                    ep.tbuf.record(NEventKind::RunStart { tasks: 0 });
                    while let Some(pkt) = ep.recv(&task_rx, master_id, "task") {
                        let idx = pkt.idx as usize;
                        ep.tbuf.record(NEventKind::ExecStart);
                        let out = job.run(idx);
                        ep.stats.ran += 1;
                        ep.tbuf.record(NEventKind::ExecEnd {
                            count: 1,
                            stolen: false,
                        });
                        if !ep.send(&res_tx, master_id, "result", Packet::new(pkt.idx, out)) {
                            break;
                        }
                    }
                    ep.tbuf.record(NEventKind::RunEnd);
                    ep.finish()
                })
            })
            .collect();

        let mut master = Endpoint::new(cfg, clock, master_id);
        master.tbuf.record(NEventKind::RunStart { tasks: n as u64 });
        let mut slots: Vec<Option<J::Out>> = (0..n).map(|_| None).collect();
        let mut outstanding = vec![0usize; workers];
        let mut next = 0usize;
        // Prime every worker, round-robin so a tiny task bag still
        // spreads across PEs; then close streams that got nothing.
        'prime: for _ in 0..prefetch {
            for w in 0..workers {
                if next >= n {
                    break 'prime;
                }
                feed(&mut master, &mut task_txs, &mut outstanding, &mut next, w);
            }
        }
        for w in 0..workers {
            if next >= n && outstanding[w] == 0 {
                task_txs[w] = None;
            }
        }
        drain_results(&mut master, &ec, &res_rxs, |master, w, pkt| {
            master.note_recv(w as u32, pkt.words, "result");
            let prev = slots[pkt.idx as usize].replace(pkt.payload);
            assert!(prev.is_none(), "task {} produced two results", pkt.idx);
            outstanding[w] -= 1;
            if next < n {
                feed(master, &mut task_txs, &mut outstanding, &mut next, w);
            } else if outstanding[w] == 0 {
                task_txs[w] = None;
            }
        });
        master.tbuf.record(NEventKind::RunEnd);
        drop(task_txs);
        let (reports, dead) = try_join_all(handles);
        (slots, reports, dead, master.finish())
    });
    let wall = clock.epoch().elapsed();
    finish_run(cfg, slots, wall, pe_reports, dead_pes, master_report)
}

/// A wave-structured computation for the [`ring`] skeleton: `len`
/// items evolve over `len` waves; wave `k`'s update of every item
/// depends only on the item itself and item `k`'s pre-wave state (the
/// pivot), which the owner broadcasts around the ring.
pub trait RingJob: Sync {
    /// One item's fully-evaluated state (a matrix row, for APSP).
    type Item: Send + Clone + Wordsize;

    /// Number of items — and of waves.
    fn len(&self) -> usize;

    /// True when there is nothing to do.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Item `idx`'s initial state.
    fn init(&self, idx: usize) -> Self::Item;

    /// Item `idx`'s next state given wave `k`'s pivot. Not called for
    /// `idx == k` — the pivot item is carried over unchanged (the
    /// Floyd–Warshall self-update is the identity).
    fn step(&self, item: &Self::Item, idx: usize, pivot: &Self::Item, k: usize) -> Self::Item;
}

/// Ring skeleton: PE `w` owns the contiguous item block
/// `block_share(len, workers, w)` as private memory for the whole
/// run. At wave `k` the owner of item `k` clones its current state as
/// the pivot and sends it to its ring successor; every other PE
/// receives the pivot from its predecessor, forwards it (unless the
/// successor is the owner, which already has it) and updates its
/// block. After the last wave each PE streams its block back to the
/// master. One pivot thus crosses each ring edge at most once per
/// wave — `workers - 1` sends per wave, never `workers²`. Panics if a
/// PE dies mid-run; see [`try_ring`].
pub fn ring<R: RingJob>(job: &R, cfg: &NativeConfig) -> NativeOutcome<R::Item> {
    try_ring(job, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`ring`], reporting dead PEs as [`EdenIncomplete`] instead of
/// panicking. A dying PE severs the ring, so its neighbours' waves
/// cannot complete either: expect a cascade where several (often all)
/// PEs land in [`EdenIncomplete::dead_pes`].
pub fn try_ring<R: RingJob>(
    job: &R,
    cfg: &NativeConfig,
) -> Result<NativeOutcome<R::Item>, EdenIncomplete> {
    let workers = cfg.workers.max(1);
    let n = job.len();
    if n == 0 {
        return Ok(empty_outcome(cfg));
    }
    let clock = WallClock::start();
    let master_id = workers as u32;
    let ec = Arc::new(EventCount::new());

    // owner[k] = PE whose block contains item k, under the same block
    // partition the PEs themselves compute.
    let mut owner = vec![0u32; n];
    for w in 0..workers {
        let (lo, hi) = block_share(n as u64, workers, w);
        for o in owner.iter_mut().take(hi as usize).skip(lo as usize) {
            *o = w as u32;
        }
    }
    let owner = &owner;

    // into[w]: ring edge from PE w-1 into PE w.
    let mut ring_txs: Vec<Option<Sender<Packet<R::Item>>>> = (0..workers).map(|_| None).collect();
    let mut ring_rxs: Vec<Option<Receiver<Packet<R::Item>>>> = (0..workers).map(|_| None).collect();
    for w in 0..workers {
        let (tx, rx) = bounded_with_notify(cfg.chan_cap, None);
        ring_txs[w] = Some(tx);
        ring_rxs[w] = Some(rx);
    }
    let mut res_txs = Vec::with_capacity(workers);
    let mut res_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = bounded_with_notify(cfg.chan_cap, Some(Arc::clone(&ec)));
        res_txs.push(tx);
        res_rxs.push(rx);
    }

    let (slots, pe_reports, dead_pes, master_report) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for (w, res_tx) in res_txs.into_iter().enumerate() {
            let succ = (w + 1) % workers;
            let pred = (w + workers - 1) % workers;
            let ring_tx = ring_txs[succ].take().expect("ring edge claimed twice");
            let ring_rx = ring_rxs[w].take().expect("ring edge claimed twice");
            handles.push(s.spawn(move || {
                let (lo, hi) = block_share(n as u64, workers, w);
                let (lo, hi) = (lo as usize, hi as usize);
                let mut ep = Endpoint::new(cfg, clock, w as u32);
                ep.tbuf.record(NEventKind::RunStart {
                    tasks: ((hi - lo) * n) as u64,
                });
                let mut items: Vec<R::Item> = (lo..hi).map(|i| job.init(i)).collect();
                for k in 0..n {
                    let own = owner[k] as usize;
                    let pivot = if own == w {
                        let pivot = items[k - lo].clone();
                        if workers > 1 {
                            ep.send(
                                &ring_tx,
                                succ as u32,
                                "ring",
                                Packet::new(k as u32, pivot.clone()),
                            );
                        }
                        pivot
                    } else {
                        let pkt = ep
                            .recv(&ring_rx, pred as u32, "ring")
                            .expect("ring closed mid-wave (peer PE died)");
                        debug_assert_eq!(pkt.idx as usize, k, "pivot arrived out of wave order");
                        if succ != own {
                            ep.send(
                                &ring_tx,
                                succ as u32,
                                "ring",
                                Packet::new(k as u32, pkt.payload.clone()),
                            );
                        }
                        pkt.payload
                    };
                    if !items.is_empty() {
                        ep.tbuf.record(NEventKind::ExecStart);
                        for (off, item) in items.iter_mut().enumerate() {
                            let idx = lo + off;
                            if idx != k {
                                *item = job.step(item, idx, &pivot, k);
                            }
                        }
                        ep.stats.ran += (hi - lo) as u64;
                        ep.tbuf.record(NEventKind::ExecEnd {
                            count: (hi - lo) as u32,
                            stolen: false,
                        });
                    }
                }
                drop(ring_tx);
                for (off, item) in items.into_iter().enumerate() {
                    let idx = (lo + off) as u32;
                    if !ep.send(&res_tx, master_id, "result", Packet::new(idx, item)) {
                        break;
                    }
                }
                ep.tbuf.record(NEventKind::RunEnd);
                ep.finish()
            }));
        }

        let mut master = Endpoint::new(cfg, clock, master_id);
        master.tbuf.record(NEventKind::RunStart { tasks: n as u64 });
        let mut slots: Vec<Option<R::Item>> = (0..n).map(|_| None).collect();
        drain_results(&mut master, &ec, &res_rxs, |master, w, pkt| {
            master.note_recv(w as u32, pkt.words, "result");
            let prev = slots[pkt.idx as usize].replace(pkt.payload);
            assert!(prev.is_none(), "item {} returned twice", pkt.idx);
        });
        master.tbuf.record(NEventKind::RunEnd);
        let (reports, dead) = try_join_all(handles);
        (slots, reports, dead, master.finish())
    });
    let wall = clock.epoch().elapsed();
    finish_run(cfg, slots, wall, pe_reports, dead_pes, master_report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rph_trace::Counters;

    struct Squares(usize);

    impl Job for Squares {
        type Out = i64;
        fn len(&self) -> usize {
            self.0
        }
        fn run(&self, idx: usize) -> i64 {
            (idx as i64) * (idx as i64)
        }
    }

    fn expected(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| i * i).collect()
    }

    const PES: [usize; 6] = [1, 2, 3, 4, 5, 8];

    fn check_farm_stats(out: &NativeOutcome<i64>, n: u64, workers: usize) {
        assert_eq!(out.stats.tasks_run, n);
        assert_eq!(out.stats.tasks_local, n);
        assert_eq!(out.stats.tasks_stolen, 0);
        assert_eq!(out.stats.per_worker.len(), workers);
        assert_eq!(out.stats.per_worker.iter().sum::<u64>(), n);
        // Farms: one result packet per task, plus (master_worker) one
        // task packet per task — and conservation on a finished run.
        assert_eq!(out.stats.msgs_sent, out.stats.msgs_recv);
        assert!(out.stats.msgs_sent >= n);
        assert!(out.stats.words_sent > 0);
        assert_eq!(out.stats.steal_ops, 0);
        assert_eq!(out.stats.splits, 0);
    }

    #[test]
    fn par_map_matches_oracle_at_all_pe_counts() {
        for w in PES {
            let cfg = NativeConfig::new(w);
            let out = par_map(&Squares(257), &cfg);
            assert_eq!(out.values, expected(257), "workers={w}");
            check_farm_stats(&out, 257, w);
            // Static deal: PE w gets every workers-th task.
            let want: Vec<u64> = (0..w)
                .map(|i| 257usize.saturating_sub(i).div_ceil(w) as u64)
                .collect();
            assert_eq!(out.stats.per_worker, want, "workers={w}");
        }
    }

    #[test]
    fn master_worker_matches_oracle_at_all_pe_counts() {
        for w in PES {
            for prefetch in [1, 2, 4] {
                let cfg = NativeConfig::new(w);
                let out = master_worker(&Squares(101), &cfg, prefetch);
                assert_eq!(out.values, expected(101), "workers={w} prefetch={prefetch}");
                check_farm_stats(&out, 101, w);
            }
        }
    }

    /// Shard-aware static deal: task `i` goes to shard `i mod shards`
    /// first, then round-robins within the shard — so the per-PE task
    /// counts follow the interleaved formula, result packets from
    /// shard-1 PEs to the (shard-0) master count as cross-shard words,
    /// and a single-shard run is the classic `i mod workers` deal with
    /// zero remote words.
    #[test]
    fn sharded_par_map_spreads_tasks_across_shards() {
        let n = 257usize;
        let flat = par_map(&Squares(n), &NativeConfig::new(4));
        assert_eq!(flat.stats.remote_words, 0);
        let cfg = NativeConfig::new(4).with_topology(2, 2);
        let out = par_map(&Squares(n), &cfg);
        assert_eq!(out.values, expected(n));
        // PE w = s·per_shard + j owns i = shards·j + s + k·workers.
        let want: Vec<u64> = (0..4)
            .map(|w| {
                let first = 2 * (w % 2) + w / 2;
                n.saturating_sub(first).div_ceil(4) as u64
            })
            .collect();
        assert_eq!(out.stats.per_worker, want);
        // Shard 1's PEs (2 and 3) stream all their results across the
        // shard boundary to the master.
        assert!(out.stats.remote_words > 0);
        assert!(out.stats.remote_words < out.stats.words_sent);
    }

    /// The oversubscription satellite: many more PEs than the
    /// (single-core CI) host has cores. The demand-driven farm must
    /// complete without deadlock with results bit-identical to the
    /// 1-PE run, and its block counters must stay conservation-sane.
    #[test]
    fn master_worker_oversubscribed_many_pes_on_one_core() {
        let one = master_worker(&Squares(200), &NativeConfig::new(1), 2);
        for pes in [16usize, 32, 64] {
            let cfg = NativeConfig::new(pes);
            let out = master_worker(&Squares(200), &cfg, 2);
            assert_eq!(out.values, one.values, "pes={pes}");
            check_farm_stats(&out, 200, pes);
            // Block episodes are bounded by message traffic plus a
            // small per-PE slack (end-of-stream waits, and the
            // master's 10 ms park safety timeout re-counting a long
            // quiet period) — not by wall time.
            assert!(
                out.stats.recv_blocks <= out.stats.msgs_recv + 10 * pes as u64 + 100,
                "pes={pes}: {:?}",
                out.stats
            );
            assert!(
                out.stats.send_blocks <= out.stats.msgs_sent,
                "pes={pes}: {:?}",
                out.stats
            );
        }
    }

    #[test]
    fn master_worker_fewer_tasks_than_pes_does_not_deadlock() {
        // The required stress shape: surplus PEs must see their task
        // stream close immediately and exit.
        for n in [1usize, 2, 3, 7] {
            for w in [4usize, 8] {
                let out = master_worker(&Squares(n), &NativeConfig::new(w), 2);
                assert_eq!(out.values, expected(n), "n={n} workers={w}");
                assert_eq!(out.stats.tasks_run, n as u64);
            }
        }
    }

    #[test]
    fn tiny_channels_engage_backpressure_without_deadlock() {
        // Capacity-1 channels everywhere: every skeleton must still
        // complete, with senders genuinely blocking along the way.
        let cfg = NativeConfig::new(4).with_chan_cap(1);
        let out = par_map(&Squares(400), &cfg);
        assert_eq!(out.values, expected(400));
        let out = master_worker(&Squares(400), &cfg, 1);
        assert_eq!(out.values, expected(400));
    }

    #[test]
    fn empty_and_single_task_jobs() {
        let cfg = NativeConfig::new(4);
        let out = par_map(&Squares(0), &cfg);
        assert!(out.values.is_empty());
        assert_eq!(out.stats.per_worker, vec![0; 4]);
        assert_eq!(out.stats.msgs_sent, 0);
        let out = par_map(&Squares(1), &cfg);
        assert_eq!(out.values, vec![0]);
        let out = master_worker(&Squares(1), &cfg, 4);
        assert_eq!(out.values, vec![0]);
    }

    /// Toy wave computation with order-dependent updates: any
    /// deviation from strict wave order or from the block ownership
    /// contract changes the result.
    struct ToyRing(usize);

    impl RingJob for ToyRing {
        type Item = Vec<f64>;
        fn len(&self) -> usize {
            self.0
        }
        fn init(&self, idx: usize) -> Vec<f64> {
            vec![idx as f64, (idx * idx) as f64 + 1.0, 3.0]
        }
        fn step(&self, item: &Vec<f64>, idx: usize, pivot: &Vec<f64>, k: usize) -> Vec<f64> {
            item.iter()
                .zip(pivot)
                .map(|(a, b)| a + b * ((k + 1) as f64) + idx as f64 * 0.5)
                .collect()
        }
    }

    fn ring_oracle(job: &ToyRing) -> Vec<Vec<f64>> {
        let n = job.len();
        let mut items: Vec<Vec<f64>> = (0..n).map(|i| job.init(i)).collect();
        for k in 0..n {
            let pivot = items[k].clone();
            for (idx, item) in items.iter_mut().enumerate() {
                if idx != k {
                    *item = job.step(item, idx, &pivot, k);
                }
            }
        }
        items
    }

    #[test]
    fn ring_matches_sequential_oracle_bit_for_bit() {
        let job = ToyRing(23);
        let want = ring_oracle(&job);
        for w in PES {
            let out = ring(&job, &NativeConfig::new(w));
            assert_eq!(out.values, want, "workers={w}");
            assert_eq!(out.stats.tasks_run, 23 * 23, "workers={w}");
            assert_eq!(out.stats.msgs_sent, out.stats.msgs_recv, "workers={w}");
            if w == 1 {
                // Lone PE: no ring traffic at all, only result returns.
                assert_eq!(out.stats.msgs_sent, 23);
            }
        }
    }

    #[test]
    fn ring_with_more_pes_than_items_still_works() {
        let job = ToyRing(3);
        let want = ring_oracle(&job);
        let out = ring(&job, &NativeConfig::new(8));
        assert_eq!(out.values, want);
        assert_eq!(out.stats.tasks_run, 9);
    }

    #[test]
    fn traced_run_reconciles_events_with_counters() {
        for (name, out) in [
            (
                "par_map",
                par_map(&Squares(64), &NativeConfig::new(3).with_trace()),
            ),
            (
                "master_worker",
                master_worker(&Squares(64), &NativeConfig::new(3).with_trace(), 2),
            ),
            (
                "ring",
                ring(&ToyRing(16), &NativeConfig::new(3).with_trace()).map_values(),
            ),
        ] {
            assert_eq!(out.trace_dropped, 0, "{name}");
            let tracer = out.trace.as_ref().expect("traced run must carry a trace");
            assert_eq!(tracer.caps(), 4, "{name}: 3 PEs + master");
            let c = Counters::from_tracer(tracer);
            assert_eq!(c.messages_sent, out.stats.msgs_sent, "{name}");
            assert_eq!(c.messages_received, out.stats.msgs_recv, "{name}");
            assert_eq!(c.message_words, out.stats.words_sent, "{name}");
            assert_eq!(c.native_send_blocks, out.stats.send_blocks, "{name}");
            assert_eq!(c.native_recv_blocks, out.stats.recv_blocks, "{name}");
            assert_eq!(c.native_tasks, out.stats.tasks_run, "{name}");
            assert_eq!(c.native_tasks_stolen, 0, "{name}");
        }
    }

    /// Erase the value type so differently-typed outcomes share one
    /// reconciliation loop above.
    trait MapValues {
        fn map_values(self) -> NativeOutcome<i64>;
    }
    impl MapValues for NativeOutcome<Vec<f64>> {
        fn map_values(self) -> NativeOutcome<i64> {
            NativeOutcome {
                values: self.values.iter().map(|v| v.len() as i64).collect(),
                wall: self.wall,
                stats: self.stats,
                trace: self.trace,
                trace_dropped: self.trace_dropped,
            }
        }
    }

    #[test]
    fn pe_panic_propagates_to_caller() {
        struct Exploding;
        impl Job for Exploding {
            type Out = i64;
            fn len(&self) -> usize {
                8
            }
            fn run(&self, idx: usize) -> i64 {
                assert!(idx != 5, "boom");
                idx as i64
            }
        }
        for skel in [Skeleton::ParMap, Skeleton::MasterWorker { prefetch: 2 }] {
            let r = std::panic::catch_unwind(|| skel.run(&Exploding, &NativeConfig::new(4)));
            assert!(r.is_err(), "{skel:?}: PE panic must reach the caller");
        }
    }

    /// The PR 6 bugfix contract: through the fallible entry points a
    /// dying PE becomes a typed error naming the dead PE and the task
    /// indices whose results were lost — no panic on the caller, no
    /// silent holes.
    #[test]
    fn dead_pe_surfaces_as_typed_error_with_lost_tasks() {
        struct Exploding;
        impl Job for Exploding {
            type Out = i64;
            fn len(&self) -> usize {
                8
            }
            fn run(&self, idx: usize) -> i64 {
                assert!(idx != 5, "boom");
                idx as i64
            }
        }
        for skel in [Skeleton::ParMap, Skeleton::MasterWorker { prefetch: 2 }] {
            let err = skel
                .try_run(&Exploding, &NativeConfig::new(4))
                .expect_err("a dead PE must fail the run");
            assert!(!err.dead_pes.is_empty(), "{skel:?}: {err:?}");
            assert!(
                err.missing.contains(&5),
                "{skel:?}: the panicking task's result must be reported lost: {err:?}"
            );
        }
        // par_map's static deal pins task 5 to PE 5 mod 4 = 1.
        let err = try_par_map(&Exploding, &NativeConfig::new(4)).unwrap_err();
        assert_eq!(err.dead_pes, vec![1]);
    }
}
