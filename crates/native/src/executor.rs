//! The multi-threaded work-stealing executor.

use rph_deque::chase_lev::{self, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How tasks reach the workers (the paper's push-vs-steal axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Static work-pushing: tasks are dealt round-robin onto every
    /// worker's deque before the run; workers never steal. This is the
    /// GHC 6.8 `schedulePushWork` shape without its scheduler-delay
    /// pathology — and it inherits static distribution's load
    /// imbalance on irregular tasks.
    Push,
    /// Work-pulling: all tasks start on worker 0's deque; idle workers
    /// pull through the Chase–Lev steal path with exponential backoff.
    Steal,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// Number of OS worker threads.
    pub workers: usize,
    /// Task distribution policy.
    pub mode: Distribution,
    /// Initial deque capacity per worker (grows as needed).
    pub deque_cap: usize,
}

impl NativeConfig {
    /// Work-pulling on `workers` threads (the paper's preferred
    /// policy, §IV.A.2).
    pub fn steal(workers: usize) -> Self {
        NativeConfig {
            workers: workers.max(1),
            mode: Distribution::Steal,
            deque_cap: 256,
        }
    }

    /// Static round-robin pushing on `workers` threads.
    pub fn push(workers: usize) -> Self {
        NativeConfig {
            workers: workers.max(1),
            mode: Distribution::Push,
            deque_cap: 256,
        }
    }
}

/// A flat set of pure, independent tasks.
///
/// `run` must be a pure function of `(self, task index)`: the executor
/// calls it exactly once per index from an arbitrary thread, in an
/// arbitrary order.
pub trait Job: Sync {
    /// Fully-evaluated task result ("WHNF data"): plain values shared
    /// read-only once published, hence `Send + Sync`.
    type Out: Send + Sync;

    /// Number of tasks.
    fn len(&self) -> usize;

    /// True when there is nothing to run.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Execute task `idx` to a fully-evaluated result.
    fn run(&self, idx: usize) -> Self::Out;
}

/// The shared result store: one write-once slot per task (the
/// "communicate only WHNF data" heap — workers publish finished
/// values, never thunks, so no cross-thread graph locking exists).
pub struct ResultHeap<T> {
    slots: Vec<OnceLock<T>>,
}

impl<T> ResultHeap<T> {
    fn new(n: usize) -> Self {
        ResultHeap {
            slots: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Publish the result of task `idx`. Panics on double write — that
    /// would mean a task ran twice, i.e. a lost race in the deque.
    fn publish(&self, idx: usize, value: T) {
        if self.slots[idx].set(value).is_err() {
            panic!("task {idx} completed twice");
        }
    }

    /// Drain all results in task order. Panics if any slot is empty.
    fn into_values(self) -> Vec<T> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.into_inner()
                    .unwrap_or_else(|| panic!("task {i} never completed"))
            })
            .collect()
    }
}

/// Counters describing how a run actually scheduled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Tasks executed, total (== job.len()).
    pub tasks_run: u64,
    /// Tasks run from the worker's own deque.
    pub tasks_local: u64,
    /// Tasks obtained through a successful steal.
    pub tasks_stolen: u64,
    /// `Steal::Retry` outcomes (lost CAS races).
    pub steal_retries: u64,
    /// Steal attempts that found the victim empty.
    pub steal_empties: u64,
    /// Tasks run by each worker (index = worker id).
    pub per_worker: Vec<u64>,
}

/// A completed native run.
#[derive(Debug)]
pub struct NativeOutcome<T> {
    /// Per-task results, in task order.
    pub values: Vec<T>,
    /// Wall-clock time of the parallel phase.
    pub wall: Duration,
    /// Scheduling counters.
    pub stats: NativeStats,
}

/// Run every task of `job` and return the results in task order.
///
/// Results are deterministic (each task's value depends only on the
/// job), regardless of worker count or distribution policy; only the
/// schedule — and the wall-clock time — varies.
pub fn execute<J: Job>(job: &J, cfg: &NativeConfig) -> NativeOutcome<J::Out> {
    let n = job.len();
    let workers = cfg.workers.max(1);
    if n == 0 {
        return NativeOutcome {
            values: Vec::new(),
            wall: Duration::ZERO,
            stats: NativeStats {
                per_worker: vec![0; workers],
                ..NativeStats::default()
            },
        };
    }

    // Build one deque per worker and the full stealer matrix.
    let mut owners: Vec<Worker<u64>> = Vec::with_capacity(workers);
    let mut stealers: Vec<Stealer<u64>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (w, s) = chase_lev::new::<u64>(cfg.deque_cap);
        owners.push(w);
        stealers.push(s);
    }

    // Seed the deques. Tasks are pushed oldest-first so thieves (FIFO
    // end) take the oldest task, as in GHC's spark pool.
    match cfg.mode {
        Distribution::Push => {
            for t in 0..n {
                owners[t % workers].push(t as u64);
            }
        }
        Distribution::Steal => {
            owners[0].push_iter((0..n as u64).collect::<Vec<_>>());
        }
    }

    let heap = Arc::new(ResultHeap::new(n));
    let remaining = AtomicUsize::new(n);
    let retries = AtomicU64::new(0);
    let empties = AtomicU64::new(0);
    let stolen_total = AtomicU64::new(0);
    let mode = cfg.mode;

    let start = Instant::now();
    let per_worker: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (me, local) in owners.into_iter().enumerate() {
            let stealers = &stealers;
            let heap = Arc::clone(&heap);
            let remaining = &remaining;
            let retries = &retries;
            let empties = &empties;
            let stolen_total = &stolen_total;
            handles.push(scope.spawn(move || {
                let mut ran = 0u64;
                'work: loop {
                    // Drain the local pool (owner end, LIFO).
                    while let Some(t) = local.pop() {
                        heap.publish(t as usize, job.run(t as usize));
                        remaining.fetch_sub(1, Ordering::Release);
                        ran += 1;
                    }
                    if mode == Distribution::Push {
                        // Static distribution: an empty local deque
                        // means this worker is done.
                        break;
                    }
                    // Work-pulling: probe the other deques until a
                    // steal lands or the whole run is finished. Lost
                    // CAS races back off exponentially before the
                    // next sweep.
                    let mut backoff = 1u32;
                    loop {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break 'work;
                        }
                        let mut contended = false;
                        for d in 0..stealers.len() - 1 {
                            let victim = (me + 1 + d) % stealers.len();
                            match stealers[victim].steal() {
                                Steal::Success(t) => {
                                    stolen_total.fetch_add(1, Ordering::Relaxed);
                                    heap.publish(t as usize, job.run(t as usize));
                                    remaining.fetch_sub(1, Ordering::Release);
                                    ran += 1;
                                    continue 'work;
                                }
                                Steal::Retry => {
                                    retries.fetch_add(1, Ordering::Relaxed);
                                    contended = true;
                                }
                                Steal::Empty => {
                                    empties.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        if contended {
                            for _ in 0..backoff {
                                std::hint::spin_loop();
                            }
                            backoff = (backoff * 2).min(1 << 10);
                        } else {
                            // Everyone looked empty but tasks are
                            // still in flight (being run, or parked in
                            // a worker we just missed): yield and look
                            // again.
                            std::thread::yield_now();
                            backoff = 1;
                        }
                    }
                }
                ran
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let wall = start.elapsed();

    assert_eq!(remaining.load(Ordering::Acquire), 0, "tasks left behind");
    let stats = NativeStats {
        tasks_run: per_worker.iter().sum(),
        tasks_local: per_worker.iter().sum::<u64>() - stolen_total.load(Ordering::Relaxed),
        tasks_stolen: stolen_total.load(Ordering::Relaxed),
        steal_retries: retries.load(Ordering::Relaxed),
        steal_empties: empties.load(Ordering::Relaxed),
        per_worker,
    };
    let heap = Arc::into_inner(heap).expect("workers joined; sole owner");
    NativeOutcome {
        values: heap.into_values(),
        wall,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Squares(usize);

    impl Job for Squares {
        type Out = u64;
        fn len(&self) -> usize {
            self.0
        }
        fn run(&self, idx: usize) -> u64 {
            (idx as u64) * (idx as u64)
        }
    }

    fn expected(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * i).collect()
    }

    #[test]
    fn runs_every_task_once_in_order() {
        for workers in [1, 2, 4, 8] {
            for cfg in [NativeConfig::steal(workers), NativeConfig::push(workers)] {
                let out = execute(&Squares(257), &cfg);
                assert_eq!(out.values, expected(257), "{cfg:?}");
                assert_eq!(out.stats.tasks_run, 257);
                assert_eq!(out.stats.per_worker.len(), workers);
            }
        }
    }

    #[test]
    fn empty_job_is_fine() {
        let out = execute(&Squares(0), &NativeConfig::steal(4));
        assert!(out.values.is_empty());
        assert_eq!(out.stats.tasks_run, 0);
    }

    #[test]
    fn single_task_many_workers() {
        let out = execute(&Squares(1), &NativeConfig::steal(8));
        assert_eq!(out.values, vec![0]);
    }

    #[test]
    fn push_mode_round_robins() {
        let out = execute(&Squares(100), &NativeConfig::push(4));
        assert_eq!(out.values, expected(100));
        // Static deal: exactly 25 tasks per worker, none stolen.
        assert_eq!(out.stats.per_worker, vec![25, 25, 25, 25]);
        assert_eq!(out.stats.tasks_stolen, 0);
    }

    #[test]
    fn steal_mode_moves_work_off_worker_zero() {
        // Tasks heavy enough that workers 1.. have time to steal
        // before worker 0 drains its own deque.
        struct Heavy;
        impl Job for Heavy {
            type Out = u64;
            fn len(&self) -> usize {
                64
            }
            fn run(&self, idx: usize) -> u64 {
                let mut acc = idx as u64;
                for i in 0..50_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
                idx as u64
            }
        }
        let out = execute(&Heavy, &NativeConfig::steal(4));
        assert_eq!(out.values, (0..64).collect::<Vec<u64>>());
        // All tasks start on worker 0, so anything another worker ran
        // was necessarily stolen. (On a single-core host preemption
        // may still let worker 0 run everything; only assert
        // consistency there.)
        let others: u64 = out.stats.per_worker[1..].iter().sum();
        assert_eq!(out.stats.tasks_stolen, others);
    }
}
