//! Public types of the native executor, and the one-shot [`execute`]
//! entry point (a [`crate::Pool`] that lives for a single run).

use crate::pool::Pool;
use std::sync::OnceLock;
use std::time::Duration;

/// How tasks reach the workers (the paper's push-vs-steal axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Static work-pushing: every worker is dealt its share of the
    /// tasks before the run and workers never steal. This is the GHC
    /// 6.8 `schedulePushWork` shape without its scheduler-delay
    /// pathology — and it inherits static distribution's load
    /// imbalance on irregular tasks.
    Push,
    /// Work-pulling: all tasks start on worker 0's deque; idle workers
    /// pull through the Chase–Lev steal path (batched), with
    /// exponential backoff on contention and parking when idle.
    Steal,
}

/// Which native execution model runs the tasks (the paper's central
/// GpH-vs-Eden axis, on real threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Shared-heap work stealing (GpH-style): one [`crate::Pool`] of
    /// workers over Chase–Lev deques publishing into a shared
    /// [`ResultHeap`]. Honours [`NativeConfig::mode`],
    /// [`NativeConfig::granularity`] and [`NativeConfig::steal_policy`].
    Steal,
    /// Message passing (Eden-style): one thread per PE with private
    /// working memory, exchanging fully-evaluated [`crate::Packet`]s
    /// over bounded channels via the skeletons in [`crate::skeletons`].
    /// Honours [`NativeConfig::chan_cap`]; the steal-side knobs are
    /// ignored (there are no deques to configure).
    Eden,
}

/// How an idle worker orders its victims when probing for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealPolicy {
    /// Deterministic round-robin: thief `me` probes `me+1, me+2, …`
    /// (mod workers). Kept as the ablation baseline — with many idle
    /// thieves it *convoys* steal traffic: every thief's sweep reaches
    /// the one loaded deque in the same order, so they arrive together
    /// and all but one pay a CAS retry per probe wave.
    RoundRobin,
    /// Randomized probing (the default, and what GHC's work-stealing
    /// does): each thief visits the other deques in an order drawn
    /// from its own xorshift generator, seeded from
    /// [`NativeConfig::seed`] + worker id — so two runs of the same
    /// config take byte-identical probe sequences, while distinct
    /// thieves spread their probes across distinct victims instead of
    /// convoying.
    Randomized,
}

/// How the task index space is carved into deque elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One deque element per task index, dealt up front — the PR 1
    /// executor's shape, kept as the ablation baseline. Scheduling
    /// cost is paid once per task no matter the load.
    Fixed,
    /// Tasks travel as packed `(lo, hi)` ranges executed sequentially
    /// from the low end; a worker splits the upper half off as a new
    /// stealable range whenever its own deque runs dry. Scheduling
    /// cost adapts to observed thief demand: O(log n) actions for a
    /// lone worker, finer fission only under contention.
    LazySplit,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// Number of OS worker threads (PEs, on the Eden backend).
    pub workers: usize,
    /// Which execution model runs the tasks.
    pub backend: BackendKind,
    /// Task distribution policy (steal backend only).
    pub mode: Distribution,
    /// Initial deque capacity per worker (grows as needed).
    pub deque_cap: usize,
    /// Task granularity policy.
    pub granularity: Granularity,
    /// Victim-selection policy for idle thieves.
    pub steal_policy: StealPolicy,
    /// Seed for the per-worker victim-selection generators (worker
    /// `i` draws from a stream seeded with `seed` + `i`, re-seeded at
    /// every run start, so identical configs probe identically).
    pub seed: u64,
    /// Collect wall-clock event traces. Off by default: when off the
    /// per-event record call is a single branch and
    /// [`NativeOutcome::trace`] is `None`.
    pub trace: bool,
    /// Per-worker trace buffer capacity, in events. The buffer is
    /// pre-allocated once per worker; events beyond the capacity are
    /// dropped (and counted in [`NativeOutcome::trace_dropped`])
    /// rather than grown into a hot-path allocation.
    pub trace_cap: usize,
    /// Bounded channel capacity, in packets (Eden backend only). A
    /// producer that runs this far ahead of its consumer blocks — the
    /// back-pressure that keeps PE memory bounded.
    pub chan_cap: usize,
    /// Number of shards the workers are grouped into (pools-of-pools).
    /// Must divide `workers`; worker `w` lives in shard
    /// `w / (workers / shards)`. 1 = the flat pool, byte-identical to
    /// the pre-topology executor. With more shards, idle thieves probe
    /// every shard-mate before any remote shard, and cross-shard
    /// steals are counted (and traced) separately — see
    /// [`Self::with_topology`].
    pub shards: usize,
}

/// Default per-worker trace buffer capacity (events). At 24 bytes per
/// record this is well under 1 MiB per worker, yet holds every event
/// of the repo's test and smoke workloads with room to spare.
pub const DEFAULT_TRACE_CAP: usize = 32 * 1024;

/// Default bounded-channel capacity for the Eden backend, in packets.
/// Deep enough that a worker streaming results rarely stalls on the
/// master, shallow enough that back-pressure engages within a handful
/// of messages (the stress tests force it to 1).
pub const DEFAULT_CHAN_CAP: usize = 8;

impl NativeConfig {
    /// The canonical constructor: `workers` threads on the default
    /// backend (shared-heap work stealing, the paper's preferred GpH
    /// policy §IV.A.2) with adaptive lazy-split granularity. Pick a
    /// different model with [`Self::with_backend`] /
    /// [`Self::with_distribution`].
    pub fn new(workers: usize) -> Self {
        NativeConfig {
            workers: workers.max(1),
            backend: BackendKind::Steal,
            mode: Distribution::Steal,
            deque_cap: 256,
            granularity: Granularity::LazySplit,
            steal_policy: StealPolicy::Randomized,
            seed: 0x5eed0fa11,
            trace: false,
            trace_cap: DEFAULT_TRACE_CAP,
            chan_cap: DEFAULT_CHAN_CAP,
            shards: 1,
        }
    }

    /// Alias for [`Self::new`], kept for callers that want the
    /// distribution policy in the constructor name: work-pulling on
    /// `workers` threads.
    pub fn steal(workers: usize) -> Self {
        Self::new(workers)
    }

    /// Alias for `new(workers).with_distribution(Distribution::Push)`:
    /// static pushing on `workers` threads.
    pub fn push(workers: usize) -> Self {
        Self::new(workers).with_distribution(Distribution::Push)
    }

    /// Same config, different task distribution policy (steal backend).
    pub fn with_distribution(mut self, mode: Distribution) -> Self {
        self.mode = mode;
        self
    }

    /// Same config, different execution model.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Same config, different bounded-channel capacity (Eden backend).
    pub fn with_chan_cap(mut self, cap: usize) -> Self {
        self.chan_cap = cap.max(1);
        self
    }

    /// Same policy, different granularity.
    pub fn with_granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Same policy, different victim selection.
    pub fn with_steal_policy(mut self, p: StealPolicy) -> Self {
        self.steal_policy = p;
        self
    }

    /// Same policy, different victim-selection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same policy, with wall-clock event tracing on.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Same policy, with a specific per-worker trace buffer capacity.
    pub fn with_trace_cap(mut self, cap: usize) -> Self {
        self.trace_cap = cap;
        self
    }

    /// A sharded pool-of-pools: `shards` shards of `per_shard` workers
    /// each (`workers = shards × per_shard`). Victim selection becomes
    /// hierarchical — a seeded permutation over the thief's own shard
    /// first, then remote shards, with cross-shard steals batch-only
    /// (`steal_batch_and_pop`) and counted separately
    /// ([`NativeStats::steal_remote`], [`NativeStats::remote_words`]).
    /// `with_topology(1, n)` is exactly the flat `new(n)` pool. On the
    /// Eden backend the shard map drives skeleton placement instead:
    /// tasks are dealt round-robin across shards, then within a shard.
    pub fn with_topology(mut self, shards: usize, per_shard: usize) -> Self {
        assert!(shards >= 1 && per_shard >= 1, "topology must be non-empty");
        self.workers = shards * per_shard;
        self.shards = shards;
        self
    }

    /// Workers per shard.
    pub fn per_shard(&self) -> usize {
        debug_assert!(self.workers.is_multiple_of(self.shards));
        self.workers / self.shards
    }

    /// Which shard worker `w` lives in.
    pub fn shard_of(&self, w: usize) -> usize {
        w / self.per_shard()
    }
}

/// A flat set of pure, independent tasks.
///
/// `run` must be a pure function of `(self, task index)`: the executor
/// calls it exactly once per index from an arbitrary thread, in an
/// arbitrary order.
pub trait Job: Sync {
    /// Fully-evaluated task result ("WHNF data"): plain values shared
    /// read-only once published, hence `Send + Sync`.
    type Out: Send + Sync;

    /// Number of tasks.
    fn len(&self) -> usize;

    /// True when there is nothing to run.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Execute task `idx` to a fully-evaluated result.
    fn run(&self, idx: usize) -> Self::Out;
}

/// The shared result store: one write-once slot per task (the
/// "communicate only WHNF data" heap — workers publish finished
/// values, never thunks, so no cross-thread graph locking exists).
pub struct ResultHeap<T> {
    slots: Vec<OnceLock<T>>,
}

impl<T> ResultHeap<T> {
    pub(crate) fn new(n: usize) -> Self {
        ResultHeap {
            slots: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Publish the result of task `idx`. Panics on double write — that
    /// would mean a task ran twice, i.e. a lost race in the deque.
    pub(crate) fn publish(&self, idx: usize, value: T) {
        if self.slots[idx].set(value).is_err() {
            panic!("task {idx} completed twice");
        }
    }

    /// Drain all results in task order. Panics if any slot is empty.
    pub(crate) fn into_values(self) -> Vec<T> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.into_inner()
                    .unwrap_or_else(|| panic!("task {i} never completed"))
            })
            .collect()
    }
}

/// Counters describing how a run actually scheduled.
///
/// `tasks_local` and `tasks_stolen` are counted *directly* at each
/// worker, attributed by how the containing range was acquired (own
/// pop / seed vs. steal), so `tasks_local + tasks_stolen == tasks_run`
/// is a measured invariant, not a derived identity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Tasks executed, total (== job.len()).
    pub tasks_run: u64,
    /// Tasks executed out of a range the worker acquired from its own
    /// deque (seeded, popped back, or batch-transferred in).
    pub tasks_local: u64,
    /// Tasks executed out of a range acquired directly by a steal.
    pub tasks_stolen: u64,
    /// Victim deques probed by idle thieves (every probe lands in
    /// exactly one of `steal_ops`, `steal_retries` or `steal_empties`;
    /// the split shows whether a victim-selection policy wastes its
    /// probes on empty or contended deques).
    pub steal_probes: u64,
    /// `Steal::Retry` outcomes (lost CAS races).
    pub steal_retries: u64,
    /// Steal attempts that found the victim empty.
    pub steal_empties: u64,
    /// Successful steal operations (each may move a whole batch;
    /// `steal_local + steal_remote == steal_ops`).
    pub steal_ops: u64,
    /// The subset of `steal_ops` whose victim shared the thief's
    /// shard. On a flat (single-shard) pool every steal is local.
    pub steal_local: u64,
    /// The subset of `steal_ops` that crossed a shard boundary
    /// (hierarchical victim selection probed the whole local shard
    /// first).
    pub steal_remote: u64,
    /// Deque words moved across shard boundaries: one packed
    /// `(lo, hi)` range word per element a cross-shard steal
    /// transferred (the stolen element plus its batch). On the Eden
    /// backend: payload words of packets whose sender and receiver
    /// PEs live in different shards.
    pub remote_words: u64,
    /// Extra deque elements transferred into thief deques by batch
    /// steals, beyond the one element each steal returns. See
    /// [`Self::mean_batch`] for the mean batch size — the naive
    /// formula `(steal_ops + batch_moved) / steal_ops` divides by
    /// zero on steal-free runs.
    pub batch_moved: u64,
    /// Lazy range splits performed (each exposes one new range).
    pub splits: u64,
    /// Times an idle worker parked on the eventcount instead of
    /// busy-waiting.
    pub parks: u64,
    /// Packets sent over channels (Eden backend; 0 on steal runs).
    pub msgs_sent: u64,
    /// Packets received over channels (Eden backend). On a completed
    /// run every packet sent is received: `msgs_recv == msgs_sent`.
    pub msgs_recv: u64,
    /// Total simulated heap words moved by sent packets (Eden
    /// backend) — the [`crate::Packet::words`] framing, so native
    /// message volume is comparable to the simulator's.
    pub words_sent: u64,
    /// Blocking waits entered by senders on a full channel (Eden
    /// backend): back-pressure engagements.
    pub send_blocks: u64,
    /// Blocking waits entered by receivers on an empty channel (Eden
    /// backend), including the master's multiplexed result waits.
    pub recv_blocks: u64,
    /// Tasks run by each worker (index = worker id).
    pub per_worker: Vec<u64>,
}

impl NativeStats {
    /// Mean number of deque elements a successful steal moved
    /// (including the one it returned to run), or `None` for runs with
    /// no successful steals — where a mean batch size is meaningless
    /// and the naive formula would divide by zero. Display code
    /// typically renders `None` as `-`; callers that need a neutral
    /// numeric default can use `mean_batch().unwrap_or(1.0)`.
    pub fn mean_batch(&self) -> Option<f64> {
        if self.steal_ops == 0 {
            None
        } else {
            Some((self.steal_ops + self.batch_moved) as f64 / self.steal_ops as f64)
        }
    }

    /// Accumulate `other`'s counters into `self` (used for chunked
    /// runs and by wave-structured workloads that issue one run per
    /// wave).
    pub fn merge(&mut self, other: &NativeStats) {
        self.tasks_run += other.tasks_run;
        self.tasks_local += other.tasks_local;
        self.tasks_stolen += other.tasks_stolen;
        self.steal_probes += other.steal_probes;
        self.steal_retries += other.steal_retries;
        self.steal_empties += other.steal_empties;
        self.steal_ops += other.steal_ops;
        self.steal_local += other.steal_local;
        self.steal_remote += other.steal_remote;
        self.remote_words += other.remote_words;
        self.batch_moved += other.batch_moved;
        self.splits += other.splits;
        self.parks += other.parks;
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.words_sent += other.words_sent;
        self.send_blocks += other.send_blocks;
        self.recv_blocks += other.recv_blocks;
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker.resize(other.per_worker.len(), 0);
        }
        for (acc, x) in self.per_worker.iter_mut().zip(&other.per_worker) {
            *acc += *x;
        }
    }
}

/// A completed native run.
#[derive(Debug)]
pub struct NativeOutcome<T> {
    /// Per-task results, in task order.
    pub values: Vec<T>,
    /// Wall-clock time of the parallel phase.
    pub wall: Duration,
    /// Scheduling counters.
    pub stats: NativeStats,
    /// Per-worker wall-clock event trace (`Some` iff
    /// [`NativeConfig::trace`] was set): one [`rph_trace::Tracer`] row
    /// per worker, timestamps in nanoseconds since the run started.
    pub trace: Option<rph_trace::Tracer>,
    /// Events that did not fit the per-worker trace buffers. Always 0
    /// for untraced runs; traced consumers should check this before
    /// treating event totals as exhaustive.
    pub trace_dropped: u64,
}

/// Run every task of `job` on the **steal backend** and return the
/// results in task order, spinning up a single-run [`Pool`].
///
/// This entry point ignores [`NativeConfig::backend`]: a [`Job`]'s
/// output carries no [`crate::Wordsize`] framing, so it cannot travel
/// over Eden channels. Jobs whose output implements `Wordsize` run on
/// the Eden backend through [`crate::skeletons::par_map`] (or via
/// `rph_workloads`' `NativeWorkload::run_on`, which dispatches on the
/// configured backend).
///
/// Results are deterministic (each task's value depends only on the
/// job), regardless of worker count, distribution policy or
/// granularity; only the schedule — and the wall-clock time — varies.
/// Wave-structured callers should hold a [`Pool`] and call
/// [`Pool::try_execute`] repeatedly instead of paying a thread spawn/join
/// per wave here.
pub fn execute<J: Job>(job: &J, cfg: &NativeConfig) -> NativeOutcome<J::Out> {
    try_execute(job, cfg).unwrap_or_else(|_| panic!("a worker panicked during a native run"))
}

/// [`execute`], surfacing a panicking task as `Err(JobPanicked)`
/// instead of aborting the calling thread — the contract long-running
/// callers (the job server) need. Persistent callers should hold a
/// [`Pool`] and use [`Pool::try_execute`] directly.
pub fn try_execute<J: Job>(
    job: &J,
    cfg: &NativeConfig,
) -> Result<NativeOutcome<J::Out>, crate::error::JobPanicked> {
    let mut cfg = cfg.clone();
    if cfg.granularity == Granularity::Fixed {
        // Fixed granularity seeds one deque element per task: size the
        // initial buffer from the job instead of growing in the seed
        // loop. (`chase_lev::new` rounds up to a power of two.)
        cfg.deque_cap = cfg.deque_cap.max(job.len());
    }
    Pool::new(&cfg).try_execute(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    struct Squares(usize);

    impl Job for Squares {
        type Out = u64;
        fn len(&self) -> usize {
            self.0
        }
        fn run(&self, idx: usize) -> u64 {
            (idx as u64) * (idx as u64)
        }
    }

    fn expected(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * i).collect()
    }

    /// Both policies × both granularities for each worker count.
    fn all_configs(workers: &[usize]) -> Vec<NativeConfig> {
        workers
            .iter()
            .flat_map(|&w| {
                [
                    NativeConfig::steal(w),
                    NativeConfig::push(w),
                    NativeConfig::steal(w).with_granularity(Granularity::Fixed),
                    NativeConfig::push(w).with_granularity(Granularity::Fixed),
                ]
            })
            .collect()
    }

    fn assert_invariants(stats: &NativeStats, n: u64, cfg: &NativeConfig) {
        assert_eq!(stats.tasks_run, n, "{cfg:?}");
        assert_eq!(
            stats.tasks_local + stats.tasks_stolen,
            stats.tasks_run,
            "directly-counted local/stolen must partition tasks_run: {cfg:?} {stats:?}"
        );
        assert_eq!(stats.per_worker.iter().sum::<u64>(), n, "{cfg:?}");
        assert_eq!(stats.per_worker.len(), cfg.workers.max(1), "{cfg:?}");
        if stats.steal_ops == 0 {
            assert_eq!(stats.batch_moved, 0, "{cfg:?}");
            assert_eq!(stats.tasks_stolen, 0, "{cfg:?}");
        }
        assert_eq!(
            stats.steal_local + stats.steal_remote,
            stats.steal_ops,
            "local/remote must partition steal_ops: {cfg:?} {stats:?}"
        );
        if cfg.shards <= 1 {
            assert_eq!(stats.steal_remote, 0, "flat pool has no shards: {cfg:?}");
            assert_eq!(stats.remote_words, 0, "flat pool has no shards: {cfg:?}");
        }
    }

    #[test]
    fn runs_every_task_once_in_order() {
        for cfg in all_configs(&[1, 2, 3, 4, 5, 8]) {
            let out = execute(&Squares(257), &cfg);
            assert_eq!(out.values, expected(257), "{cfg:?}");
            assert_invariants(&out.stats, 257, &cfg);
        }
    }

    #[test]
    fn degenerate_shapes_fewer_tasks_than_workers() {
        // Single-range jobs and `job.len() < workers` under every
        // policy/granularity, including odd worker counts.
        for n in [1usize, 2, 3, 7] {
            for cfg in all_configs(&[3, 5, 8]) {
                let out = execute(&Squares(n), &cfg);
                assert_eq!(out.values, expected(n), "n={n} {cfg:?}");
                assert_invariants(&out.stats, n as u64, &cfg);
            }
        }
    }

    #[test]
    fn empty_job_is_fine() {
        let out = execute(&Squares(0), &NativeConfig::steal(4));
        assert!(out.values.is_empty());
        assert_eq!(out.stats.tasks_run, 0);
        assert_eq!(out.stats.per_worker, vec![0; 4]);
    }

    #[test]
    fn single_task_many_workers() {
        let out = execute(&Squares(1), &NativeConfig::steal(8));
        assert_eq!(out.values, vec![0]);
    }

    #[test]
    fn push_mode_stays_static() {
        for g in [Granularity::Fixed, Granularity::LazySplit] {
            let out = execute(&Squares(100), &NativeConfig::push(4).with_granularity(g));
            assert_eq!(out.values, expected(100), "{g:?}");
            // Static deal: exactly 25 tasks per worker, none stolen.
            assert_eq!(out.stats.per_worker, vec![25, 25, 25, 25], "{g:?}");
            assert_eq!(out.stats.tasks_stolen, 0, "{g:?}");
            assert_eq!(out.stats.tasks_local, 100, "{g:?}");
            assert_eq!(out.stats.steal_ops, 0, "{g:?}");
        }
    }

    /// The sharded pool-of-pools is a victim-*ordering* change, not a
    /// semantics change: results, task conservation and the
    /// local/remote steal partition all hold, and every steal is
    /// classified by the shard map.
    #[test]
    fn sharded_pool_matches_flat_results() {
        let flat = execute(&Squares(257), &NativeConfig::steal(4));
        for (shards, per_shard) in [(2, 2), (4, 1)] {
            let cfg = NativeConfig::steal(4).with_topology(shards, per_shard);
            assert_eq!(cfg.workers, 4);
            assert_eq!(cfg.per_shard(), per_shard);
            let out = execute(&Squares(257), &cfg);
            assert_eq!(out.values, flat.values, "{cfg:?}");
            assert_invariants(&out.stats, 257, &cfg);
            // A cross-shard steal always carries at least the popped
            // range (1 packed word) plus its batched extras.
            assert!(out.stats.remote_words >= out.stats.steal_remote, "{cfg:?}");
        }
    }

    /// The paper's oversubscription axis on the steal pool: far more
    /// workers than the (single-core CI) host has cores. The pool must
    /// neither deadlock nor corrupt results, and idle workers must
    /// park by episode rather than spin-looping the counters into the
    /// sky.
    #[test]
    fn oversubscribed_steal_pool_completes_and_matches() {
        let one = execute(&Squares(400), &NativeConfig::steal(1));
        for workers in [16usize, 32, 64] {
            let cfg = NativeConfig::steal(workers);
            let out = execute(&Squares(400), &cfg);
            assert_eq!(out.values, one.values, "workers={workers}");
            assert_invariants(&out.stats, 400, &cfg);
            // Parks are counted per contiguous idle episode, so even a
            // heavily oversubscribed run stays within a small multiple
            // of the worker count — not wall-time / park-timeout.
            assert!(
                out.stats.parks <= 100 * workers as u64,
                "workers={workers}: parks exploded: {:?}",
                out.stats
            );
        }
    }

    /// Tasks heavy enough that workers 1.. have time to steal before
    /// worker 0 drains its own deque.
    struct Heavy;
    impl Job for Heavy {
        type Out = u64;
        fn len(&self) -> usize {
            64
        }
        fn run(&self, idx: usize) -> u64 {
            let mut acc = idx as u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            idx as u64
        }
    }

    #[test]
    fn steal_mode_moves_work_off_worker_zero() {
        for g in [Granularity::Fixed, Granularity::LazySplit] {
            let out = execute(&Heavy, &NativeConfig::steal(4).with_granularity(g));
            assert_eq!(out.values, (0..64).collect::<Vec<u64>>(), "{g:?}");
            assert_invariants(&out.stats, 64, &NativeConfig::steal(4).with_granularity(g));
            // All work starts on worker 0, so any other worker's first
            // range necessarily arrived through a steal. (On a
            // single-core host preemption may still let worker 0 run
            // everything; only assert consistency there.)
            let others: u64 = out.stats.per_worker[1..].iter().sum();
            if others > 0 {
                assert!(out.stats.tasks_stolen > 0, "{g:?}: {:?}", out.stats);
                assert!(out.stats.steal_ops > 0, "{g:?}: {:?}", out.stats);
            }
        }
    }

    #[test]
    fn lazy_split_records_splits() {
        // With >1 worker the seed range is popped into an empty deque,
        // so the very first demand check must split — deterministically.
        let out = execute(&Squares(100), &NativeConfig::steal(2));
        assert_eq!(out.values, expected(100));
        assert!(out.stats.splits >= 1, "{:?}", out.stats);
    }

    #[test]
    fn pool_reuse_runs_many_jobs_on_the_same_threads() {
        let mut pool = Pool::new(&NativeConfig::steal(4));
        for wave in 0..10usize {
            let out = pool.try_execute(&Squares(40 + wave)).unwrap();
            assert_eq!(out.values, expected(40 + wave), "wave {wave}");
            assert_eq!(out.stats.tasks_run, 40 + wave as u64);
            assert_eq!(out.stats.per_worker.len(), 4);
        }
        // The same pool serves jobs of a different output type.
        struct Halves(usize);
        impl Job for Halves {
            type Out = usize;
            fn len(&self) -> usize {
                self.0
            }
            fn run(&self, idx: usize) -> usize {
                idx / 2
            }
        }
        let out = pool.try_execute(&Halves(33)).unwrap();
        assert_eq!(out.values, (0..33).map(|i| i / 2).collect::<Vec<_>>());
    }

    /// One task blocks the run open until the cheap tasks are done;
    /// the workers left with nothing to do must park (not busy-wait),
    /// and completion must still wake everyone promptly.
    struct OneLong {
        others_done: AtomicU64,
    }
    impl Job for OneLong {
        type Out = u64;
        fn len(&self) -> usize {
            4
        }
        fn run(&self, idx: usize) -> u64 {
            if idx == 0 {
                // Wait for the stealable tasks (at least 2 of the
                // other 3 are outside any range this worker holds),
                // then hold the run open long enough for the now-idle
                // workers to exhaust their spin budget and park.
                let deadline = Instant::now() + Duration::from_secs(10);
                while self.others_done.load(Ordering::Acquire) < 2 {
                    assert!(Instant::now() < deadline, "helpers never ran");
                    std::hint::spin_loop();
                }
                let hold = Instant::now() + Duration::from_millis(100);
                while Instant::now() < hold {
                    std::hint::spin_loop();
                }
            } else {
                self.others_done.fetch_add(1, Ordering::Release);
            }
            idx as u64
        }
    }

    #[test]
    fn starved_workers_park_and_wake_on_completion() {
        let job = OneLong {
            others_done: AtomicU64::new(0),
        };
        let start = Instant::now();
        let out = execute(&job, &NativeConfig::steal(4));
        let elapsed = start.elapsed();
        assert_eq!(out.values, vec![0, 1, 2, 3]);
        assert!(
            out.stats.parks > 0,
            "idle workers should park while the long task runs: {:?}",
            out.stats
        );
        // Completion must not wait out park timeouts one by one.
        assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives_process() {
        struct Exploding;
        impl Job for Exploding {
            type Out = u64;
            fn len(&self) -> usize {
                8
            }
            fn run(&self, idx: usize) -> u64 {
                assert!(idx != 5, "boom");
                idx as u64
            }
        }
        let result = std::panic::catch_unwind(|| execute(&Exploding, &NativeConfig::steal(4)));
        assert!(result.is_err(), "task panic must propagate to the caller");
    }
}
