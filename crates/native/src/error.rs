//! Typed errors for native runs.
//!
//! Until PR 6 every failure inside a native run — a panicking task on
//! the steal backend, a dying PE on the Eden backend — was surfaced by
//! panicking on the *calling* thread. That is fine for one-shot
//! experiments and fatal for a long-running job server, where one
//! poisoned tenant job must not take down the process serving everyone
//! else. These types make the failure modes values instead:
//!
//! * [`JobPanicked`] — a task panicked on a pool worker; the run was
//!   aborted but the pool threads survive and keep serving runs.
//! * [`EdenIncomplete`] — one or more Eden PEs died mid-run, so the
//!   result vector has holes; carries *which* PEs died and *which*
//!   task indices were lost.
//! * [`RunError`] — the union, plus cooperative [`Cancelled`]
//!   (see [`crate::CancelToken`]), as produced by the fallible entry
//!   points (`Pool::try_execute_cancellable`, `try_par_map`, …).
//!
//! [`Cancelled`]: RunError::Cancelled

use std::fmt;

/// A task panicked on a pool worker during a native run.
///
/// The run was aborted (remaining tasks were discarded) but the pool
/// itself is intact: the worker caught the unwind, cleared its deque,
/// and is waiting for the next run. Carries no payload — the panic
/// message already went to the panic hook on the worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPanicked;

impl fmt::Display for JobPanicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a worker panicked during a native run")
    }
}

impl std::error::Error for JobPanicked {}

/// An Eden run lost results because one or more PEs died mid-run.
///
/// A dying PE drops its channel endpoints, which unblocks its peers
/// and lets the master's drain terminate; what remains is a result
/// vector with holes. This error names the dead PEs and the task
/// indices whose results never arrived, so a caller (the job server)
/// can fail exactly the affected jobs and keep serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdenIncomplete {
    /// PE ids (tracer row indices) whose threads panicked.
    pub dead_pes: Vec<u32>,
    /// Task indices that never produced a result packet.
    pub missing: Vec<u32>,
}

impl fmt::Display for EdenIncomplete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Eden run incomplete: {} PE(s) died ({:?}), {} task result(s) lost",
            self.dead_pes.len(),
            self.dead_pes,
            self.missing.len()
        )
    }
}

impl std::error::Error for EdenIncomplete {}

/// Any way a fallible native run can end without a full result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A task panicked on a pool worker ([`JobPanicked`]).
    Panicked(JobPanicked),
    /// The run's [`crate::CancelToken`] was observed set; workers
    /// stopped at the next range boundary and the partial results were
    /// discarded.
    Cancelled,
    /// One or more Eden PEs died mid-run ([`EdenIncomplete`]).
    Incomplete(EdenIncomplete),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panicked(e) => e.fmt(f),
            RunError::Cancelled => f.write_str("native run cancelled"),
            RunError::Incomplete(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunError {}

impl From<JobPanicked> for RunError {
    fn from(e: JobPanicked) -> Self {
        RunError::Panicked(e)
    }
}

impl From<EdenIncomplete> for RunError {
    fn from(e: EdenIncomplete) -> Self {
        RunError::Incomplete(e)
    }
}
