//! Victim selection for idle thieves.
//!
//! The PR 2 executor swept victims in fixed round-robin order:
//! thief `me` probed `me+1, me+2, …` (mod workers). Deterministic, but
//! it *convoys* steal traffic — when several workers go idle at once
//! (the common case: a run starts with all work on worker 0, or a
//! lazy split exposes one new range), their sweeps walk the victim
//! space in lock-step shifted by one, so they pile onto the loaded
//! deque within the same few probes and all but one of them pays a
//! `top` CAS retry — per probe wave, on the most contended line in the
//! system. GHC's work-stealing scheduler (and every classic
//! work-stealing runtime since Cilk) picks victims pseudo-randomly for
//! exactly this reason.
//!
//! [`VictimPicker`] draws a fresh random *permutation* of the other
//! workers for every sweep from a per-worker xorshift64* generator,
//! using the shared sweep contract in [`rph_sim::sweep`] (the same
//! Fisher–Yates + Lemire-bounded loop the GpH simulator's `DetRng`
//! sweeps use):
//!
//! * **Decorrelated**: distinct thieves shuffle with distinct streams,
//!   so simultaneous sweeps spread their first probes across distinct
//!   victims instead of convoying.
//! * **Full coverage**: a sweep still probes every other deque exactly
//!   once, so the bounded-sweep park contract is unchanged — a
//!   fruitless sweep really did observe every victim empty (or
//!   contended), and `SPIN_SWEEPS` fruitless sweeps mean what they
//!   always meant.
//! * **Deterministic per seed**: the generator is re-seeded from
//!   `(NativeConfig::seed, worker id)` at every run start, so two runs
//!   of the same config take byte-identical probe sequences —
//!   differential tests stay reproducible.
//! * **Allocation-free on the hot path**: the permutation buffer is
//!   allocated once per worker thread and shuffled in place
//!   (Fisher–Yates) at sweep start.
//!
//! Under a sharded pool (`NativeConfig::with_topology`) the
//! permutation is **hierarchical**: every sweep probes all of the
//! thief's own shard (shuffled) before any remote shard (shuffled
//! separately) — an idle worker drains nearby deques, which share
//! cache and memory controller, before it touches a remote shard's
//! lines. With one shard the remote segment is empty and the sweep is
//! byte-identical to the flat picker.
//!
//! [`StealPolicy::RoundRobin`] keeps the old fixed order as the
//! ablation baseline.

use crate::executor::StealPolicy;
use rph_sim::sweep::{self, SweepRng};

/// xorshift64* stream; state never zero. Implements the shared
/// [`SweepRng`] contract so the sweep shuffle is the one in
/// `rph_sim::sweep`, not a private copy.
pub(crate) struct Xorshift(u64);

impl SweepRng for Xorshift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// One worker's victim-order generator (see module docs).
pub(crate) struct VictimPicker {
    policy: StealPolicy,
    /// The other workers' ids, probed front to back each sweep: the
    /// thief's shard-mates in `order[..local_len]`, remote-shard
    /// workers after. Each segment is shuffled in place per sweep
    /// under [`StealPolicy::Randomized`].
    order: Vec<u32>,
    /// How many entries of `order` are shard-local victims.
    local_len: usize,
    rng: Xorshift,
    /// Kept so [`Self::begin_run`] can re-seed.
    me: u64,
    workers: usize,
    per_shard: usize,
}

/// SplitMix64 step — used only to turn `(seed, me)` into a
/// well-mixed, nonzero xorshift state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl VictimPicker {
    /// A picker for worker `me` of `workers`, grouped into shards of
    /// `per_shard` workers (`per_shard == workers` is the flat,
    /// single-shard pool). Probes the thief's `per_shard - 1`
    /// shard-mates before the `workers - per_shard` remote workers.
    pub fn new(policy: StealPolicy, me: usize, workers: usize, per_shard: usize) -> Self {
        assert!(per_shard >= 1 && workers.is_multiple_of(per_shard));
        let mut p = VictimPicker {
            policy,
            order: vec![0; workers - 1],
            local_len: per_shard - 1,
            rng: Xorshift(1),
            me: me as u64,
            workers,
            per_shard,
        };
        p.canonical_order();
        p
    }

    /// Restore the canonical (round-robin) order: shard-mates `me+1,
    /// me+2, …` wrapping within the shard, then remote workers in
    /// index order starting at the next shard, wrapping.
    fn canonical_order(&mut self) {
        let me = self.me as usize;
        let base = me - me % self.per_shard;
        for d in 1..self.per_shard {
            self.order[d - 1] = (base + (me - base + d) % self.per_shard) as u32;
        }
        let mut k = self.local_len;
        for w in (base + self.per_shard..self.workers).chain(0..base) {
            self.order[k] = w as u32;
            k += 1;
        }
        debug_assert_eq!(k, self.order.len());
    }

    /// Re-seed for a run: identical `(seed, me)` ⇒ identical shuffles.
    pub fn begin_run(&mut self, seed: u64) {
        // Feed worker id through the mixer (not a plain add) so
        // adjacent workers get uncorrelated streams; xorshift needs a
        // nonzero state.
        self.rng = Xorshift(splitmix64(seed ^ splitmix64(self.me)) | 1);
        // The shuffle permutes `order` in place, so the buffer itself
        // is RNG state: restore the canonical order too, or the first
        // sweep of a run would depend on the previous run's last sweep.
        self.canonical_order();
    }

    /// How many victims at the front of a sweep share the thief's
    /// shard.
    #[cfg(test)]
    pub fn local_len(&self) -> usize {
        self.local_len
    }

    /// Start a sweep and return the victim order to probe, front to
    /// back. Round-robin returns the fixed canonical order; randomized
    /// Fisher–Yates-shuffles the local and remote segments in place
    /// first (the remote segment is empty on a single-shard pool, so
    /// the flat picker's draw sequence is unchanged).
    pub fn sweep(&mut self) -> &[u32] {
        if self.policy == StealPolicy::Randomized {
            let (local, remote) = self.order.split_at_mut(self.local_len);
            sweep::shuffle(&mut self.rng, local);
            sweep::shuffle(&mut self.rng, remote);
        }
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(xs: &[u32]) -> Vec<u32> {
        let mut v = xs.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn round_robin_keeps_the_fixed_order() {
        let mut p = VictimPicker::new(StealPolicy::RoundRobin, 1, 4, 4);
        p.begin_run(7);
        assert_eq!(p.sweep(), &[2, 3, 0]);
        assert_eq!(p.sweep(), &[2, 3, 0]);
    }

    #[test]
    fn randomized_sweep_is_a_permutation_of_the_other_workers() {
        for me in 0..5 {
            let mut p = VictimPicker::new(StealPolicy::Randomized, me, 5, 5);
            p.begin_run(42);
            for _ in 0..50 {
                let order = sorted(p.sweep());
                let expect: Vec<u32> = (0..5u32).filter(|&w| w != me as u32).collect();
                assert_eq!(order, expect, "me={me}");
            }
        }
    }

    #[test]
    fn same_seed_same_sequence_different_seed_different() {
        let mut a = VictimPicker::new(StealPolicy::Randomized, 2, 8, 8);
        let mut b = VictimPicker::new(StealPolicy::Randomized, 2, 8, 8);
        a.begin_run(123);
        b.begin_run(123);
        let sa: Vec<Vec<u32>> = (0..20).map(|_| a.sweep().to_vec()).collect();
        let sb: Vec<Vec<u32>> = (0..20).map(|_| b.sweep().to_vec()).collect();
        assert_eq!(sa, sb, "same seed must replay byte-identically");

        b.begin_run(124);
        let sc: Vec<Vec<u32>> = (0..20).map(|_| b.sweep().to_vec()).collect();
        assert_ne!(sa, sc, "different seeds should diverge");
    }

    #[test]
    fn begin_run_resets_the_stream() {
        let mut p = VictimPicker::new(StealPolicy::Randomized, 0, 6, 6);
        p.begin_run(9);
        let first: Vec<Vec<u32>> = (0..10).map(|_| p.sweep().to_vec()).collect();
        p.begin_run(9);
        let again: Vec<Vec<u32>> = (0..10).map(|_| p.sweep().to_vec()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn distinct_workers_get_distinct_streams() {
        // Not a property that must hold for every seed/pair, but for
        // the default seed the first sweeps of 8 workers should not
        // all coincide once rotated into a common frame — that is the
        // convoy the policy exists to break.
        let mut firsts = Vec::new();
        for me in 0..8usize {
            let mut p = VictimPicker::new(StealPolicy::Randomized, me, 8, 8);
            p.begin_run(0x5eed0fa11);
            // Rotate victim ids into the thief's own frame: relative
            // distance from `me`, so identical relative patterns (the
            // round-robin convoy) collide.
            let rel: Vec<u32> = p.sweep().iter().map(|&v| (v + 8 - me as u32) % 8).collect();
            firsts.push(rel);
        }
        firsts.sort();
        firsts.dedup();
        assert!(
            firsts.len() > 1,
            "all workers produced the same relative probe order"
        );
    }

    #[test]
    fn single_worker_has_no_victims() {
        let mut p = VictimPicker::new(StealPolicy::Randomized, 0, 1, 1);
        p.begin_run(1);
        assert!(p.sweep().is_empty());
    }

    #[test]
    fn sharded_sweep_probes_the_whole_local_shard_first() {
        // 8 workers in 2 shards of 4; thief 1 lives in shard {0,1,2,3}.
        let mut p = VictimPicker::new(StealPolicy::Randomized, 1, 8, 4);
        p.begin_run(77);
        assert_eq!(p.local_len(), 3);
        for _ in 0..50 {
            let order = p.sweep().to_vec();
            assert_eq!(sorted(&order[..3]), vec![0, 2, 3], "local shard first");
            assert_eq!(sorted(&order[3..]), vec![4, 5, 6, 7], "then remote");
        }
    }

    #[test]
    fn sharded_round_robin_order_is_canonical() {
        let mut p = VictimPicker::new(StealPolicy::RoundRobin, 5, 8, 4);
        p.begin_run(0);
        // Shard-mates after 5 wrapping within {4,5,6,7}, then the
        // other shard from index 0 (the wrap below worker 4's base).
        assert_eq!(p.sweep(), &[6, 7, 4, 0, 1, 2, 3]);
    }

    #[test]
    fn single_shard_picker_matches_the_flat_picker_bit_for_bit() {
        // `with_topology(1, n)` must not change any probe sequence:
        // the flat picker is the per_shard == workers special case.
        let mut flat = VictimPicker::new(StealPolicy::Randomized, 3, 6, 6);
        let mut sharded = VictimPicker::new(StealPolicy::Randomized, 3, 6, 6);
        flat.begin_run(0xABCD);
        sharded.begin_run(0xABCD);
        for _ in 0..100 {
            assert_eq!(flat.sweep(), sharded.sweep());
        }
    }

    /// The dedupe cross-check (PR 9 satellite): the GpH simulator's
    /// `DetRng`-driven sweeps and the native picker implement the same
    /// `rph_sim::sweep` contract — from one seed, both produce
    /// full-coverage single-probe sweeps: deterministic permutations
    /// that visit every victim exactly once per sweep.
    #[test]
    fn both_sweep_implementations_honour_the_shared_contract() {
        const SEED: u64 = 0x9E37;
        let victims: Vec<u32> = (1..8).collect(); // thief 0 of 8

        // GpH-style: DetRng shuffle of the victim buffer (what
        // `GphRuntime::victim_sweep` does each steal sweep).
        let mut rng = rph_sim::DetRng::new(SEED);
        let mut gph_sweeps = Vec::new();
        for _ in 0..20 {
            let mut buf = victims.clone();
            rng.shuffle(&mut buf);
            gph_sweeps.push(buf);
        }

        // Native: VictimPicker for the same thief, seeded identically.
        let mut p = VictimPicker::new(StealPolicy::Randomized, 0, 8, 8);
        p.begin_run(SEED);
        let native_sweeps: Vec<Vec<u32>> = (0..20).map(|_| p.sweep().to_vec()).collect();

        for (g, n) in gph_sweeps.iter().zip(&native_sweeps) {
            assert_eq!(sorted(g), victims, "gph sweep covers every victim once");
            assert_eq!(sorted(n), victims, "native sweep covers every victim once");
        }
        // Determinism: replaying either side from the same seed
        // reproduces the exact sweep sequence.
        let mut rng2 = rph_sim::DetRng::new(SEED);
        for g in &gph_sweeps {
            let mut buf = victims.clone();
            rng2.shuffle(&mut buf);
            assert_eq!(&buf, g);
        }
        let mut p2 = VictimPicker::new(StealPolicy::Randomized, 0, 8, 8);
        p2.begin_run(SEED);
        for n in &native_sweeps {
            assert_eq!(p2.sweep(), &n[..]);
        }
    }
}
