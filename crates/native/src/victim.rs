//! Victim selection for idle thieves.
//!
//! The PR 2 executor swept victims in fixed round-robin order:
//! thief `me` probed `me+1, me+2, …` (mod workers). Deterministic, but
//! it *convoys* steal traffic — when several workers go idle at once
//! (the common case: a run starts with all work on worker 0, or a
//! lazy split exposes one new range), their sweeps walk the victim
//! space in lock-step shifted by one, so they pile onto the loaded
//! deque within the same few probes and all but one of them pays a
//! `top` CAS retry — per probe wave, on the most contended line in the
//! system. GHC's work-stealing scheduler (and every classic
//! work-stealing runtime since Cilk) picks victims pseudo-randomly for
//! exactly this reason.
//!
//! [`VictimPicker`] draws a fresh random *permutation* of the other
//! workers for every sweep from a per-worker xorshift64* generator:
//!
//! * **Decorrelated**: distinct thieves shuffle with distinct streams,
//!   so simultaneous sweeps spread their first probes across distinct
//!   victims instead of convoying.
//! * **Full coverage**: a sweep still probes every other deque exactly
//!   once, so the bounded-sweep park contract is unchanged — a
//!   fruitless sweep really did observe every victim empty (or
//!   contended), and `SPIN_SWEEPS` fruitless sweeps mean what they
//!   always meant.
//! * **Deterministic per seed**: the generator is re-seeded from
//!   `(NativeConfig::seed, worker id)` at every run start, so two runs
//!   of the same config take byte-identical probe sequences —
//!   differential tests stay reproducible.
//! * **Allocation-free on the hot path**: the permutation buffer is
//!   allocated once per worker thread and shuffled in place
//!   (Fisher–Yates) at sweep start.
//!
//! [`StealPolicy::RoundRobin`] keeps the old fixed order as the
//! ablation baseline.

use crate::executor::StealPolicy;

/// One worker's victim-order generator (see module docs).
pub(crate) struct VictimPicker {
    policy: StealPolicy,
    /// The other workers' ids, probed front to back each sweep;
    /// shuffled in place per sweep under [`StealPolicy::Randomized`].
    order: Vec<u32>,
    /// xorshift64* state; never zero.
    state: u64,
    /// The per-run seed base, kept so [`Self::begin_run`] can re-seed.
    me: u64,
}

/// SplitMix64 step — used only to turn `(seed, me)` into a
/// well-mixed, nonzero xorshift state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl VictimPicker {
    /// A picker for worker `me` of `workers`, probing the other
    /// `workers - 1` deques per sweep.
    pub fn new(policy: StealPolicy, me: usize, workers: usize) -> Self {
        let order = (1..workers).map(|d| ((me + d) % workers) as u32).collect();
        VictimPicker {
            policy,
            order,
            state: 1,
            me: me as u64,
        }
    }

    /// Re-seed for a run: identical `(seed, me)` ⇒ identical shuffles.
    pub fn begin_run(&mut self, seed: u64) {
        // Feed worker id through the mixer (not a plain add) so
        // adjacent workers get uncorrelated streams; xorshift needs a
        // nonzero state.
        self.state = splitmix64(seed ^ splitmix64(self.me)) | 1;
        // The shuffle permutes `order` in place, so the buffer itself
        // is RNG state: restore the canonical round-robin order too,
        // or the first sweep of a run would depend on the previous
        // run's last sweep.
        let workers = self.order.len() + 1;
        for (d, slot) in self.order.iter_mut().enumerate() {
            *slot = ((self.me as usize + d + 1) % workers) as u32;
        }
    }

    /// Next xorshift64* value.
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform index in `0..n` (multiply-shift; bias negligible at
    /// `n` ≪ 2⁶⁴).
    fn bounded(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    /// Start a sweep and return the victim order to probe, front to
    /// back. Round-robin returns the fixed `me+1, me+2, …` order;
    /// randomized Fisher–Yates-shuffles the buffer in place first.
    pub fn sweep(&mut self) -> &[u32] {
        if self.policy == StealPolicy::Randomized {
            for i in (1..self.order.len()).rev() {
                let j = self.bounded(i as u64 + 1) as usize;
                self.order.swap(i, j);
            }
        }
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(xs: &[u32]) -> Vec<u32> {
        let mut v = xs.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn round_robin_keeps_the_fixed_order() {
        let mut p = VictimPicker::new(StealPolicy::RoundRobin, 1, 4);
        p.begin_run(7);
        assert_eq!(p.sweep(), &[2, 3, 0]);
        assert_eq!(p.sweep(), &[2, 3, 0]);
    }

    #[test]
    fn randomized_sweep_is_a_permutation_of_the_other_workers() {
        for me in 0..5 {
            let mut p = VictimPicker::new(StealPolicy::Randomized, me, 5);
            p.begin_run(42);
            for _ in 0..50 {
                let order = sorted(p.sweep());
                let expect: Vec<u32> = (0..5u32).filter(|&w| w != me as u32).collect();
                assert_eq!(order, expect, "me={me}");
            }
        }
    }

    #[test]
    fn same_seed_same_sequence_different_seed_different() {
        let mut a = VictimPicker::new(StealPolicy::Randomized, 2, 8);
        let mut b = VictimPicker::new(StealPolicy::Randomized, 2, 8);
        a.begin_run(123);
        b.begin_run(123);
        let sa: Vec<Vec<u32>> = (0..20).map(|_| a.sweep().to_vec()).collect();
        let sb: Vec<Vec<u32>> = (0..20).map(|_| b.sweep().to_vec()).collect();
        assert_eq!(sa, sb, "same seed must replay byte-identically");

        b.begin_run(124);
        let sc: Vec<Vec<u32>> = (0..20).map(|_| b.sweep().to_vec()).collect();
        assert_ne!(sa, sc, "different seeds should diverge");
    }

    #[test]
    fn begin_run_resets_the_stream() {
        let mut p = VictimPicker::new(StealPolicy::Randomized, 0, 6);
        p.begin_run(9);
        let first: Vec<Vec<u32>> = (0..10).map(|_| p.sweep().to_vec()).collect();
        p.begin_run(9);
        let again: Vec<Vec<u32>> = (0..10).map(|_| p.sweep().to_vec()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn distinct_workers_get_distinct_streams() {
        // Not a property that must hold for every seed/pair, but for
        // the default seed the first sweeps of 8 workers should not
        // all coincide once rotated into a common frame — that is the
        // convoy the policy exists to break.
        let mut firsts = Vec::new();
        for me in 0..8usize {
            let mut p = VictimPicker::new(StealPolicy::Randomized, me, 8);
            p.begin_run(0x5eed0fa11);
            // Rotate victim ids into the thief's own frame: relative
            // distance from `me`, so identical relative patterns (the
            // round-robin convoy) collide.
            let rel: Vec<u32> = p.sweep().iter().map(|&v| (v + 8 - me as u32) % 8).collect();
            firsts.push(rel);
        }
        firsts.sort();
        firsts.dedup();
        assert!(
            firsts.len() > 1,
            "all workers produced the same relative probe order"
        );
    }

    #[test]
    fn single_worker_has_no_victims() {
        let mut p = VictimPicker::new(StealPolicy::Randomized, 0, 1);
        p.begin_run(1);
        assert!(p.sweep().is_empty());
    }
}
