//! Idle-worker parking: a Condvar-backed eventcount.
//!
//! An idle worker that has swept every deque fruitlessly for a while
//! should *sleep*, not burn a core on `yield_now` — the paper's
//! experiments charge idle capabilities nothing, and a busy-waiting
//! thief on a loaded host actively steals cycles from the workers that
//! still hold work. The protocol here is the classic eventcount:
//!
//! 1. The would-be sleeper reads the epoch, registers itself in
//!    `sleepers` (SeqCst), fences, and only then re-checks for work.
//! 2. A producer makes new work visible (deque push), fences, and reads
//!    `sleepers`; if non-zero it bumps the epoch *under the lock* and
//!    notifies.
//! 3. The sleeper blocks only while the epoch still equals the value it
//!    read, checked under the same lock.
//!
//! No lost wakeup is possible: the two SeqCst fences order each
//! sleeper/producer pair — either the producer's `sleepers` read sees
//! the registration (so it notifies, and the epoch check under the lock
//! catches a bump that lands before the sleeper blocks), or the
//! sleeper's work re-check happens after the producer's push and finds
//! the work. A bounded `wait_timeout` backstops the argument: even a
//! bug here would cost a few milliseconds of latency, never a hang.

use rph_deque::CachePadded;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Safety-net bound on one blocked wait.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

fn lock(m: &Mutex<()>) -> MutexGuard<'_, ()> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A Condvar-backed eventcount (see module docs for the protocol).
///
/// The two park flags are cache-line padded: `sleepers` is written by
/// every parking/unparking worker while `notify_all` — called on every
/// push, split and task completion, i.e. from the busy workers' hot
/// paths — only *reads* it. Unpadded, each park/unpark would bounce
/// the line under every producer's fast-path read (and `epoch` bumps
/// would invalidate it again); padded, the producer fast path stays a
/// read of a line that changes only when sleepers actually come or go.
pub(crate) struct EventCount {
    epoch: CachePadded<AtomicU64>,
    sleepers: CachePadded<AtomicU64>,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl EventCount {
    pub fn new() -> Self {
        EventCount {
            epoch: CachePadded::new(AtomicU64::new(0)),
            sleepers: CachePadded::new(AtomicU64::new(0)),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Wake every parked worker, if any might be parked. Callers must
    /// already have made the wake-worthy state (a deque push, the
    /// completion flag) visible before calling.
    pub fn notify_all(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let _g = lock(&self.mutex);
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
    }

    /// Park until the next [`Self::notify_all`], unless `still_idle` —
    /// re-evaluated *after* registering as a sleeper — reports that
    /// work or completion slipped in. Returns true iff the thread
    /// actually blocked.
    ///
    /// Caller contract for *counting* parks: `park_if` also returns
    /// true when the wait merely hit the [`PARK_TIMEOUT`] safety net,
    /// and an idle worker will typically loop straight back in here.
    /// Counting every true return therefore inflates the park counter
    /// by one per 10 ms of idleness. Callers that maintain statistics
    /// must count one park per *idle episode* — increment on the first
    /// true return and not again until work has actually been found
    /// (see `RunCtx::run` in `pool.rs`).
    pub fn park_if(&self, still_idle: impl Fn() -> bool) -> bool {
        let e = self.epoch.load(Ordering::Relaxed);
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let mut slept = false;
        if still_idle() {
            let mut g = lock(&self.mutex);
            while self.epoch.load(Ordering::Relaxed) == e {
                let (g2, result) = self
                    .cv
                    .wait_timeout(g, PARK_TIMEOUT)
                    .unwrap_or_else(|err| err.into_inner());
                g = g2;
                slept = true;
                if result.timed_out() {
                    break;
                }
            }
            drop(g);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        slept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn notify_with_no_sleepers_is_cheap_and_safe() {
        let ec = EventCount::new();
        ec.notify_all();
        // A sleeper whose recheck finds work never blocks.
        assert!(!ec.park_if(|| false));
    }

    #[test]
    fn parked_thread_wakes_on_notify() {
        let ec = Arc::new(EventCount::new());
        let ready = Arc::new(AtomicBool::new(false));
        let h = {
            let ec = Arc::clone(&ec);
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                let mut parked_once = false;
                while !ready.load(Ordering::Acquire) {
                    parked_once |= ec.park_if(|| !ready.load(Ordering::Acquire));
                }
                parked_once
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        ready.store(true, Ordering::Release);
        ec.notify_all();
        // The thread terminates promptly and really slept at least once.
        assert!(h.join().unwrap());
    }

    #[test]
    fn timed_out_wait_still_reports_blocked() {
        // Nobody ever notifies: the wait can only end via the
        // PARK_TIMEOUT safety net. The return value must still be
        // true (the thread really blocked) — which is exactly why
        // callers must not count one park per true return (see the
        // park_if docs), or a single idle episode spanning several
        // timeouts is double-counted.
        let ec = EventCount::new();
        let t0 = std::time::Instant::now();
        assert!(ec.park_if(|| true));
        assert!(t0.elapsed() >= PARK_TIMEOUT);
    }
}
