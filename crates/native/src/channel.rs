//! Bounded SPSC channels and packet framing for the native Eden
//! backend.
//!
//! Eden's §II model is the opposite of a shared heap: processes own
//! their graph privately and exchange **fully-evaluated data** over
//! explicit one-to-one channels. The native analogue here:
//!
//! * [`bounded`] builds a single-producer / single-consumer channel
//!   with a fixed capacity. A full channel *blocks the sender* — that
//!   is Eden's back-pressure: a producer ahead of its consumer sits in
//!   `waitForSpace`, it does not balloon the consumer's heap. An empty
//!   channel blocks the receiver. Both ends expose `try_*`
//!   counterparts so callers can record a block event *before* going
//!   to sleep.
//! * Values travel as [`Packet`]s: the payload plus a simulated-heap
//!   word count mirroring `rph_eden`'s `Packet::words` accounting
//!   (per-cell costs from `rph_heap::Value::words`). Real threads
//!   move `T` by value — the framing exists so native traces and
//!   stats report message *sizes* comparable to the simulator's.
//! * Dropping an endpoint closes the channel: a sender into a closed
//!   channel gets its value back ([`TrySendError::Disconnected`]), a
//!   receiver drains what is buffered and then sees `None` — the same
//!   end-of-stream convention as the sim's task streams.
//!
//! The implementation is a `Mutex<VecDeque>` with two condvars. That
//! is deliberate: channel operations happen per *message* (a handful
//! per task), not per scheduling decision, so the lock is off any hot
//! path — unlike the deques, which take millions of operations per
//! run and earned their lock-free treatment.

use crate::park::EventCount;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Simulated-heap size of a fully-evaluated value, in heap words.
///
/// Mirrors `rph_heap::Value::words`: scalar cells (`Int`, `Double`,
/// `Bool`, `Unit`, `Nil`) cost a 2-word header+payload cell; an array
/// of doubles costs a 2-word descriptor plus one word per element.
/// Native payloads implement this so [`Packet::new`] can charge the
/// same wire cost the simulator charges for the equivalent graph.
pub trait Wordsize {
    /// Heap words this value would occupy as simulated graph cells.
    fn words(&self) -> u64;
}

impl Wordsize for i64 {
    fn words(&self) -> u64 {
        2
    }
}

impl Wordsize for u64 {
    fn words(&self) -> u64 {
        2
    }
}

impl Wordsize for f64 {
    fn words(&self) -> u64 {
        2
    }
}

impl Wordsize for () {
    fn words(&self) -> u64 {
        2
    }
}

impl Wordsize for Vec<f64> {
    fn words(&self) -> u64 {
        2 + self.len() as u64
    }
}

impl Wordsize for Vec<u64> {
    fn words(&self) -> u64 {
        2 + self.len() as u64
    }
}

impl Wordsize for Vec<i64> {
    fn words(&self) -> u64 {
        2 + self.len() as u64
    }
}

impl<T: Wordsize> Wordsize for Option<T> {
    fn words(&self) -> u64 {
        match self {
            Some(v) => v.words(),
            None => 2,
        }
    }
}

/// A framed message: an index identifying which task/row the payload
/// answers, plus the payload and its simulated wire size.
#[derive(Debug, Clone)]
pub struct Packet<T> {
    /// Task (or row) index the payload belongs to.
    pub idx: u32,
    /// Simulated size on the wire, in heap words: a 1-word frame
    /// header, a 2-word index cell, and the payload's own cells.
    pub words: u64,
    /// The fully-evaluated payload.
    pub payload: T,
}

impl<T: Wordsize> Packet<T> {
    /// Frame `payload` as the answer for task `idx`.
    pub fn new(idx: u32, payload: T) -> Self {
        let words = 1 + 2 + payload.words();
        Packet {
            idx,
            words,
            payload,
        }
    }
}

/// Why a [`Sender::try_send`] could not deliver; the value comes back.
#[derive(Debug)]
pub enum TrySendError<T> {
    /// Buffer at capacity — blocking [`Sender::send`] would wait.
    Full(T),
    /// Receiver dropped — nothing will ever drain this channel.
    Disconnected(T),
}

/// The channel's shared state: the buffer plus liveness flags for the
/// two endpoints.
struct Shared<T> {
    buf: VecDeque<T>,
    cap: usize,
    tx_alive: bool,
    rx_alive: bool,
}

struct Chan<T> {
    shared: Mutex<Shared<T>>,
    /// Signalled when space appears (a pop) or the receiver drops.
    not_full: Condvar,
    /// Signalled when a message appears (a push) or the sender drops.
    not_empty: Condvar,
    /// Optional out-of-band wakeup: notified on every push and on
    /// sender drop, so a consumer multiplexing *several* channels
    /// (the master–worker master) can sleep on one eventcount instead
    /// of one condvar per channel.
    notify: Option<Arc<EventCount>>,
}

impl<T> Chan<T> {
    fn lock(&self) -> MutexGuard<'_, Shared<T>> {
        self.shared.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn ping(&self) {
        if let Some(ec) = &self.notify {
            ec.notify_all();
        }
    }
}

/// Producing end of a bounded SPSC channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Consuming end of a bounded SPSC channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// A bounded SPSC channel of capacity `cap` (clamped to at least 1).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    bounded_with_notify(cap, None)
}

/// [`bounded`], with an optional eventcount pinged on every push and
/// on sender drop — the receiver-side multiplexing hook.
pub(crate) fn bounded_with_notify<T>(
    cap: usize,
    notify: Option<Arc<EventCount>>,
) -> (Sender<T>, Receiver<T>) {
    let cap = cap.max(1);
    let chan = Arc::new(Chan {
        shared: Mutex::new(Shared {
            buf: VecDeque::with_capacity(cap),
            cap,
            tx_alive: true,
            rx_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        notify,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Deliver `value` without blocking, or report why not.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut s = self.chan.lock();
        if !s.rx_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if s.buf.len() >= s.cap {
            return Err(TrySendError::Full(value));
        }
        s.buf.push_back(value);
        drop(s);
        self.chan.not_empty.notify_one();
        self.chan.ping();
        Ok(())
    }

    /// Deliver `value`, blocking while the buffer is full. Returns the
    /// value back if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut s = self.chan.lock();
        loop {
            if !s.rx_alive {
                return Err(value);
            }
            if s.buf.len() < s.cap {
                s.buf.push_back(value);
                drop(s);
                self.chan.not_empty.notify_one();
                self.chan.ping();
                return Ok(());
            }
            s = self
                .chan
                .not_full
                .wait(s)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.chan.lock();
        s.tx_alive = false;
        drop(s);
        self.chan.not_empty.notify_all();
        self.chan.ping();
    }
}

impl<T> Receiver<T> {
    /// Take the next message without blocking, if one is buffered.
    pub fn try_recv(&self) -> Option<T> {
        let mut s = self.chan.lock();
        let v = s.buf.pop_front();
        if v.is_some() {
            drop(s);
            self.chan.not_full.notify_one();
        }
        v
    }

    /// Take the next message, blocking while the buffer is empty.
    /// `None` means the sender is gone *and* the buffer is drained —
    /// end of stream.
    pub fn recv(&self) -> Option<T> {
        let mut s = self.chan.lock();
        loop {
            if let Some(v) = s.buf.pop_front() {
                drop(s);
                self.chan.not_full.notify_one();
                return Some(v);
            }
            if !s.tx_alive {
                return None;
            }
            s = self
                .chan
                .not_empty
                .wait(s)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// True when a `try_recv` right now would find a message *or* the
    /// stream has ended — i.e. polling this channel would make
    /// progress. A multiplexing consumer parks only while every
    /// channel reports false.
    pub fn poll_ready(&self) -> bool {
        let s = self.chan.lock();
        !s.buf.is_empty() || !s.tx_alive
    }

    /// True once the sender is gone. Messages may still be buffered;
    /// after a true reading, a `try_recv` drain is exhaustive (nothing
    /// new can arrive).
    pub fn is_closed(&self) -> bool {
        !self.chan.lock().tx_alive
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.chan.lock();
        s.rx_alive = false;
        drop(s);
        self.chan.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(
            (0..4).map(|_| rx.try_recv().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn full_buffer_rejects_then_accepts_after_pop() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let (tx, rx) = bounded(0);
        tx.try_send(7).unwrap();
        match tx.try_send(8) {
            Err(TrySendError::Full(8)) => {}
            other => panic!("expected Full(8), got {other:?}"),
        }
        assert_eq!(rx.recv(), Some(7));
    }

    #[test]
    fn receiver_drop_bounces_sends() {
        let (tx, rx) = bounded::<i32>(2);
        drop(rx);
        match tx.try_send(1) {
            Err(TrySendError::Disconnected(1)) => {}
            other => panic!("expected Disconnected(1), got {other:?}"),
        }
        assert_eq!(tx.send(2), Err(2));
    }

    #[test]
    fn sender_drop_drains_then_ends_stream() {
        let (tx, rx) = bounded(4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert!(rx.poll_ready(), "ended stream must read as ready");
    }

    #[test]
    fn blocking_send_wakes_on_space_and_recv_on_data() {
        // A capacity-1 channel forces every send after the first to
        // block; the consumer sleeps between pops. 10k messages of
        // lockstep is a decent deadlock shake-out.
        let (tx, rx) = bounded(1);
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::with_capacity(10_000);
        while let Some(v) = rx.recv() {
            got.push(v);
            // Throttle occasionally so the producer really hits Full.
            if got.len() % 1000 == 0 {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..10_000).collect::<Vec<u64>>());
    }

    #[test]
    fn packet_framing_charges_simulated_words() {
        // Header (1) + index cell (2) + payload cells.
        assert_eq!(Packet::new(0, 42i64).words, 5);
        assert_eq!(Packet::new(3, ()).words, 5);
        let row = vec![0.0f64; 10];
        assert_eq!(Packet::new(1, row).words, 1 + 2 + 2 + 10);
    }

    #[test]
    fn notify_hook_pings_on_push_and_disconnect() {
        let ec = Arc::new(EventCount::new());
        let (tx, rx) = bounded_with_notify(2, Some(Arc::clone(&ec)));
        let waiter = {
            let ec = Arc::clone(&ec);
            std::thread::spawn(move || {
                while !rx.poll_ready() {
                    ec.park_if(|| !rx.poll_ready());
                }
                rx.try_recv()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        tx.try_send(99).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(99));
    }
}
