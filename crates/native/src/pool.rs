//! The persistent worker pool with adaptive-granularity scheduling.
//!
//! [`Pool`] spawns its OS workers **once** and accepts repeated
//! [`Pool::try_execute`] calls: wave-structured workloads (APSP issues one
//! run per pivot) reuse the same threads and deques instead of paying a
//! full spawn/join barrier per wave. Within a run:
//!
//! * Tasks travel as packed `(lo, hi)` index ranges
//!   ([`rph_deque::Range32`] — two `u32`s in the deque's `u64` slot).
//! * **Lazy range splitting** ([`Granularity::LazySplit`]): a worker
//!   executes its range sequentially from the low end, but before each
//!   index checks whether its own deque has gone empty — the signal
//!   that thieves are hungry — and if so pushes the upper half off as a
//!   new stealable range. Granularity thus adapts to observed demand:
//!   a lone worker runs the whole job with O(log n) scheduling actions,
//!   while under contention ranges fission until every core is fed.
//! * Thieves use [`Stealer::steal_batch_and_pop`], landing up to half
//!   the victim's elements in their own deque per probe.
//! * Idle workers spin for a bounded number of fruitless sweeps, then
//!   park on the [`EventCount`] until a push or run completion wakes
//!   them (see `park.rs` for the lost-wakeup argument).

use crate::cancel::CancelToken;
use crate::error::{JobPanicked, RunError};
use crate::executor::{
    Distribution, Granularity, Job, NativeConfig, NativeOutcome, NativeStats, ResultHeap,
    StealPolicy,
};
use crate::park::EventCount;
use crate::trace::{map_events, NEvent, NEventKind, TraceBuf};
use crate::victim::VictimPicker;
use rph_deque::chase_lev::{self, BatchSteal, Stealer, Worker};
use rph_deque::{CachePadded, Range32};
use rph_trace::{CapId, Tracer, WallClock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Fruitless full sweeps over every victim before a worker parks.
const SPIN_SWEEPS: usize = 64;

/// Most tasks a single run hands to the workers: range bounds must fit
/// the packed `(lo, hi)` u32 halves of a deque element. Longer jobs
/// are executed as consecutive chunks of at most this many tasks (see
/// [`Pool::try_execute`]) instead of silently truncating indices.
const MAX_RUN_TASKS: usize = u32::MAX as usize;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One run, as published to the workers. The runner reference is
/// lifetime-erased; see the safety comment in [`Pool::try_execute`].
#[derive(Clone)]
struct RunCmd {
    runner: &'static (dyn Fn(u64) + Sync),
    n: u64,
    mode: Distribution,
    granularity: Granularity,
    /// The run's shared time zero, so every worker's trace events and
    /// the coordinator's wall measurement agree.
    clock: WallClock,
    /// Cooperative cancel flag for this run, polled at range
    /// boundaries. `None` for uncancellable runs.
    cancel: Option<CancelToken>,
}

/// Per-worker, per-run counters, accumulated without synchronisation
/// and merged under the control lock at run end.
#[derive(Debug, Clone, Default)]
struct WorkerStats {
    ran: u64,
    local: u64,
    stolen: u64,
    probes: u64,
    retries: u64,
    empties: u64,
    steal_ops: u64,
    steal_local: u64,
    steal_remote: u64,
    remote_words: u64,
    batch_moved: u64,
    splits: u64,
    parks: u64,
}

/// State guarded by the control mutex: run hand-off and completion.
struct Ctrl {
    run_seq: u64,
    cmd: Option<RunCmd>,
    done: usize,
    /// Per-worker stats slots, one cache line each: every worker
    /// writes its own slot at run end while siblings are writing
    /// theirs (the mutex serialises the *writes*, not the line
    /// ping-pong of unrelated slots packed together).
    worker_stats: Vec<CachePadded<WorkerStats>>,
    /// Per-worker trace events of the finished run (empty when tracing
    /// is off), flushed here by each worker alongside its stats.
    worker_events: Vec<Vec<NEvent>>,
    /// Per-worker count of events that overflowed the trace buffer.
    worker_dropped: Vec<u64>,
    shutdown: bool,
}

/// State shared between the pool handle and its workers.
///
/// `remaining` is the run's shared hot word — decremented by every
/// worker per task, polled by every idle worker per probe loop — and
/// `panicked` sits on the same polling paths; each gets its own cache
/// line so a task completion does not invalidate the line an idle
/// worker is spinning on for an unrelated field (the eventcount pads
/// its own internals the same way).
struct Shared {
    ctrl: Mutex<Ctrl>,
    start_cv: Condvar,
    done_cv: Condvar,
    /// Tasks not yet executed in the current run.
    remaining: CachePadded<AtomicU64>,
    /// Set when any worker's task panicked; aborts the run.
    panicked: CachePadded<AtomicBool>,
    ec: EventCount,
    stealers: Vec<Stealer<Range32>>,
    workers: usize,
    /// Workers per shard (pools-of-pools); `workers` when the pool is
    /// flat. Worker `w` lives in shard `w / per_shard`; thieves probe
    /// every shard-mate before any remote shard, and cross-shard
    /// steals are counted separately.
    per_shard: usize,
    /// Victim-selection policy and seed, fixed at pool construction.
    steal_policy: StealPolicy,
    seed: u64,
    /// Wall-clock event tracing on/off and per-worker buffer size,
    /// fixed at pool construction.
    trace_on: bool,
    trace_cap: usize,
}

/// A persistent pool of worker threads executing [`Job`]s.
///
/// Workers are spawned by [`Pool::new`] and joined on drop; every
/// [`Pool::try_execute`] in between reuses them. `execute` takes `&mut
/// self` — runs are strictly sequential per pool.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    mode: Distribution,
    granularity: Granularity,
    /// Most tasks per run; `MAX_RUN_TASKS` except in tests, which
    /// shrink it to exercise the chunking path at sane job sizes.
    run_cap: usize,
}

impl Pool {
    /// Spawn `cfg.workers` threads, each owning a Chase–Lev deque of
    /// `cfg.deque_cap` initial slots (deques grow on demand).
    pub fn new(cfg: &NativeConfig) -> Pool {
        let workers = cfg.workers.max(1);
        let shards = cfg.shards.max(1);
        assert!(
            workers.is_multiple_of(shards),
            "shards ({shards}) must divide workers ({workers}) — use with_topology"
        );
        let mut owners: Vec<Worker<Range32>> = Vec::with_capacity(workers);
        let mut stealers: Vec<Stealer<Range32>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (w, s) = chase_lev::new::<Range32>(cfg.deque_cap);
            owners.push(w);
            stealers.push(s);
        }
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                run_seq: 0,
                cmd: None,
                done: 0,
                worker_stats: vec![CachePadded::new(WorkerStats::default()); workers],
                worker_events: vec![Vec::new(); workers],
                worker_dropped: vec![0; workers],
                shutdown: false,
            }),
            start_cv: Condvar::new(),
            done_cv: Condvar::new(),
            remaining: CachePadded::new(AtomicU64::new(0)),
            panicked: CachePadded::new(AtomicBool::new(false)),
            ec: EventCount::new(),
            stealers,
            workers,
            per_shard: workers / shards,
            steal_policy: cfg.steal_policy,
            seed: cfg.seed,
            trace_on: cfg.trace,
            trace_cap: cfg.trace_cap,
        });
        let handles = owners
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rph-native-{me}"))
                    .spawn(move || worker_main(me, local, shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            mode: cfg.mode,
            granularity: cfg.granularity,
            run_cap: MAX_RUN_TASKS,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Shrink the per-run task cap so tests can drive the chunking
    /// path without a four-billion-task job.
    #[cfg(test)]
    pub(crate) fn set_run_cap_for_tests(&mut self, cap: usize) {
        assert!(cap > 0 && cap <= MAX_RUN_TASKS);
        self.run_cap = cap;
    }

    /// Run every task of `job` on the pool's workers and return the
    /// results in task order. Semantics are identical to
    /// [`crate::execute`]; only the thread lifecycle differs.
    ///
    /// Jobs longer than the packed-range index space (`u32::MAX`
    /// tasks) are executed as consecutive chunks — every task still
    /// runs exactly once and results stay in task order; indices are
    /// never truncated.
    ///
    /// A panicking task aborts the run (remaining tasks are
    /// discarded) and surfaces here as `Err(JobPanicked)`; the pool's
    /// workers survive and keep serving subsequent runs.
    pub fn try_execute<J: Job>(&mut self, job: &J) -> Result<NativeOutcome<J::Out>, JobPanicked> {
        self.execute_inner(job, None).map_err(|e| match e {
            RunError::Panicked(p) => p,
            // No token was supplied and the pool raises nothing else.
            e => unreachable!("uncancellable pool run failed with {e}"),
        })
    }

    /// [`Self::try_execute`] with a cooperative [`CancelToken`]:
    /// workers poll the token at every range boundary (and parked
    /// workers within the 10 ms park safety timeout), so a cancelled
    /// run winds down after at most one in-flight range per worker and
    /// returns `Err(RunError::Cancelled)`, discarding partial results.
    pub fn try_execute_cancellable<J: Job>(
        &mut self,
        job: &J,
        cancel: &CancelToken,
    ) -> Result<NativeOutcome<J::Out>, RunError> {
        self.execute_inner(job, Some(cancel))
    }

    /// Panicking wrapper kept for one release: existing one-shot
    /// callers that treat a task panic as fatal. New code — anything
    /// long-running — should use [`Self::try_execute`].
    #[deprecated(note = "use try_execute: a panicking job aborts the calling thread here")]
    pub fn execute<J: Job>(&mut self, job: &J) -> NativeOutcome<J::Out> {
        self.try_execute(job)
            .unwrap_or_else(|_| panic!("a worker panicked during a native run"))
    }

    fn execute_inner<J: Job>(
        &mut self,
        job: &J,
        cancel: Option<&CancelToken>,
    ) -> Result<NativeOutcome<J::Out>, RunError> {
        let n = job.len();
        let workers = self.shared.workers;
        let mut trace = self.shared.trace_on.then(|| Tracer::new(workers));
        if n == 0 {
            return Ok(NativeOutcome {
                values: Vec::new(),
                wall: Duration::ZERO,
                stats: NativeStats {
                    per_worker: vec![0; workers],
                    ..NativeStats::default()
                },
                trace,
                trace_dropped: 0,
            });
        }

        let clock = WallClock::start();
        let mut values: Vec<J::Out> = Vec::with_capacity(n);
        let mut stats = NativeStats {
            per_worker: vec![0; workers],
            ..NativeStats::default()
        };
        let mut trace_dropped = 0u64;
        let mut wall = Duration::ZERO;
        let mut base = 0usize;
        while base < n {
            if cancel.is_some_and(|t| t.is_cancelled()) {
                return Err(RunError::Cancelled);
            }
            let count = (n - base).min(self.run_cap);
            let heap = ResultHeap::new(count);
            let runner = |i: u64| heap.publish(i as usize, job.run(base + i as usize));
            let runner_ref: &(dyn Fn(u64) + Sync) = &runner;
            // SAFETY: workers call `runner` only between observing the
            // new `run_seq` and incrementing `done`; this chunk's loop
            // body blocks until `done == workers` before moving on, so
            // the erased borrow of `heap`/`job` strictly outlives every
            // use. `cmd` is cleared below before the borrow expires.
            let runner_static: &'static (dyn Fn(u64) + Sync) =
                unsafe { std::mem::transmute::<&(dyn Fn(u64) + Sync), _>(runner_ref) };

            self.shared.panicked.store(false, Ordering::SeqCst);
            self.shared.remaining.store(count as u64, Ordering::SeqCst);
            let start = Instant::now();
            let chunk_stats = {
                let mut ctrl = lock(&self.shared.ctrl);
                ctrl.cmd = Some(RunCmd {
                    runner: runner_static,
                    n: count as u64,
                    mode: self.mode,
                    granularity: self.granularity,
                    clock,
                    cancel: cancel.cloned(),
                });
                ctrl.run_seq += 1;
                ctrl.done = 0;
                for s in ctrl.worker_stats.iter_mut() {
                    **s = WorkerStats::default();
                }
                self.shared.start_cv.notify_all();
                while ctrl.done < workers {
                    ctrl = self
                        .shared
                        .done_cv
                        .wait(ctrl)
                        .unwrap_or_else(|e| e.into_inner());
                }
                ctrl.cmd = None;
                if let Some(tracer) = trace.as_mut() {
                    for (c, events) in ctrl.worker_events.iter_mut().enumerate() {
                        map_events(tracer, CapId(c as u32), events);
                        events.clear();
                    }
                    for d in ctrl.worker_dropped.iter_mut() {
                        trace_dropped += std::mem::take(d);
                    }
                }
                collect_stats(&ctrl.worker_stats)
            };
            wall += start.elapsed();

            // Abort checks, in precedence order: a panic trumps a
            // cancel that raced in during the same chunk. On either,
            // `heap` is dropped part-filled — the asserts below only
            // hold for completed chunks.
            if self.shared.panicked.load(Ordering::SeqCst) {
                return Err(RunError::Panicked(JobPanicked));
            }
            if cancel.is_some_and(|t| t.is_cancelled()) {
                return Err(RunError::Cancelled);
            }
            debug_assert_eq!(self.shared.remaining.load(Ordering::SeqCst), 0);
            assert_eq!(chunk_stats.tasks_run, count as u64, "tasks left behind");
            values.extend(heap.into_values());
            stats.merge(&chunk_stats);
            base += count;
        }
        assert_eq!(stats.tasks_run, n as u64, "tasks left behind");
        Ok(NativeOutcome {
            values,
            wall,
            stats,
            trace,
            trace_dropped,
        })
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut ctrl = lock(&self.shared.ctrl);
            ctrl.shutdown = true;
            self.shared.start_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn collect_stats(per_worker: &[CachePadded<WorkerStats>]) -> NativeStats {
    let mut out = NativeStats {
        per_worker: per_worker.iter().map(|s| s.ran).collect(),
        ..NativeStats::default()
    };
    for s in per_worker.iter() {
        out.tasks_run += s.ran;
        out.tasks_local += s.local;
        out.tasks_stolen += s.stolen;
        out.steal_probes += s.probes;
        out.steal_retries += s.retries;
        out.steal_empties += s.empties;
        out.steal_ops += s.steal_ops;
        out.steal_local += s.steal_local;
        out.steal_remote += s.steal_remote;
        out.remote_words += s.remote_words;
        out.batch_moved += s.batch_moved;
        out.splits += s.splits;
        out.parks += s.parks;
    }
    out
}

/// `worker`'s contiguous share of `[0, n)` under static block
/// partitioning. Shared with the Eden backend's ring skeleton, which
/// uses the same partition for row ownership.
pub(crate) fn block_share(n: u64, workers: usize, worker: usize) -> (u32, u32) {
    let w = workers as u64;
    let lo = (n * worker as u64 / w) as u32;
    let hi = (n * (worker as u64 + 1) / w) as u32;
    (lo, hi)
}

fn worker_main(me: usize, local: Worker<Range32>, shared: Arc<Shared>) {
    let mut seen_seq = 0u64;
    // The worker's trace buffer and victim-order buffer are allocated
    // once, here, and reused across every run the pool ever executes.
    let mut tbuf = TraceBuf::new(shared.trace_on, shared.trace_cap);
    let mut picker = VictimPicker::new(shared.steal_policy, me, shared.workers, shared.per_shard);
    loop {
        // Wait for the next run (or shutdown).
        let cmd = {
            let mut ctrl = lock(&shared.ctrl);
            loop {
                if ctrl.shutdown {
                    return;
                }
                if ctrl.run_seq != seen_seq {
                    seen_seq = ctrl.run_seq;
                    break ctrl.cmd.clone().expect("run_seq bumped without a command");
                }
                ctrl = shared
                    .start_cv
                    .wait(ctrl)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };

        tbuf.begin_run(cmd.clock);
        // Re-seed per run, so identical configs replay byte-identical
        // probe sequences no matter how many runs preceded them.
        picker.begin_run(shared.seed);
        let mut stats = WorkerStats::default();
        let run = RunCtx {
            me,
            local: &local,
            shared: &shared,
            cmd,
        };
        if catch_unwind(AssertUnwindSafe(|| {
            run.run(&mut stats, &mut tbuf, &mut picker)
        }))
        .is_err()
        {
            shared.panicked.store(true, Ordering::SeqCst);
            shared.ec.notify_all();
        }
        if shared.panicked.load(Ordering::SeqCst) || run.cancelled() {
            // Abandoned run (panic or cancellation): clear leftovers so
            // they cannot leak into the next run's index space.
            while local.pop().is_some() {}
        }

        let mut ctrl = lock(&shared.ctrl);
        *ctrl.worker_stats[me] = stats;
        ctrl.worker_dropped[me] = tbuf.flush_into(&mut ctrl.worker_events[me]);
        ctrl.done += 1;
        if ctrl.done == shared.workers {
            shared.done_cv.notify_all();
        }
    }
}

/// Everything one worker needs for one run.
struct RunCtx<'a> {
    me: usize,
    local: &'a Worker<Range32>,
    shared: &'a Shared,
    cmd: RunCmd,
}

impl RunCtx<'_> {
    fn run(&self, stats: &mut WorkerStats, tbuf: &mut TraceBuf, picker: &mut VictimPicker) {
        let workers = self.shared.workers;
        let n = self.cmd.n;
        tbuf.record(NEventKind::RunStart { tasks: n });
        self.seed();
        // Wake anyone who parked before our seed landed (a fast
        // sibling can reach the idle path before worker 0 seeds).
        self.shared.ec.notify_all();

        // Splitting only pays when someone can steal the exposed half.
        let split = self.cmd.granularity == Granularity::LazySplit
            && self.cmd.mode == Distribution::Steal
            && workers > 1;

        'run: loop {
            // Drain the local pool (owner end, LIFO). The cancel poll
            // sits here, at the range boundary: a popped range runs to
            // completion, the *next* pop observes the token.
            while let Some(r) = self.local.pop() {
                if self.cancelled() {
                    break 'run;
                }
                self.process(r, false, split, stats, tbuf);
            }
            if self.cmd.mode == Distribution::Push {
                // Static distribution: an empty local deque means this
                // worker is done.
                break;
            }
            debug_assert!(n > 0);
            // Work-pulling: probe the other deques until a steal lands
            // or the run finishes. Lost CAS races back off; fruitless
            // sweeps first spin, then park. `parked_episode` tracks
            // whether THIS contiguous idle episode already counted a
            // park: `park_if`'s 10 ms safety timeout (and any spurious
            // condvar return) drops the worker back into the sweep
            // loop, and re-parking after another fruitless sweep is
            // still the same idle episode — counting it again would
            // inflate `parks` by wall time / 10 ms instead of by
            // episode. The episode ends only when work arrives.
            let mut backoff = 1u32;
            let mut fruitless = 0usize;
            let mut parked_episode = false;
            loop {
                if self.finished() {
                    break 'run;
                }
                let mut contended = false;
                let mut got = None;
                // One sweep probes every other deque once; the *order*
                // is the steal policy's choice (fixed round-robin, or
                // a per-sweep random permutation — see `victim.rs`).
                for &victim in picker.sweep() {
                    let victim = victim as usize;
                    stats.probes += 1;
                    match self.shared.stealers[victim].steal_batch_and_pop(self.local) {
                        BatchSteal::Success { first, moved } => {
                            stats.steal_ops += 1;
                            stats.batch_moved += moved as u64;
                            let per_shard = self.shared.per_shard;
                            if victim / per_shard == self.me / per_shard {
                                stats.steal_local += 1;
                                tbuf.record(NEventKind::StealOk {
                                    victim: victim as u32,
                                    moved: moved as u32,
                                });
                            } else {
                                // Cross-shard transfer: the popped range
                                // plus the batched extras, one packed
                                // (lo, hi) word each.
                                stats.steal_remote += 1;
                                stats.remote_words += 1 + moved as u64;
                                tbuf.record(NEventKind::StealOkRemote {
                                    victim: victim as u32,
                                    moved: moved as u32,
                                });
                            }
                            if moved > 0 {
                                // The transferred tail is stealable
                                // from our deque now — tell sleepers.
                                self.shared.ec.notify_all();
                            }
                            got = Some(first);
                            break;
                        }
                        BatchSteal::Retry => {
                            stats.retries += 1;
                            tbuf.record(NEventKind::StealRetry {
                                victim: victim as u32,
                            });
                            contended = true;
                        }
                        BatchSteal::Empty => {
                            stats.empties += 1;
                            tbuf.record(NEventKind::StealEmpty {
                                victim: victim as u32,
                            });
                        }
                    }
                }
                if let Some(r) = got {
                    if parked_episode {
                        tbuf.record(NEventKind::Unpark);
                    }
                    self.process(r, true, split, stats, tbuf);
                    continue 'run;
                }
                if contended {
                    for _ in 0..backoff {
                        std::hint::spin_loop();
                    }
                    backoff = (backoff * 2).min(1 << 10);
                    fruitless = 0;
                } else {
                    backoff = 1;
                    fruitless += 1;
                    if fruitless < SPIN_SWEEPS {
                        std::thread::yield_now();
                    } else {
                        fruitless = 0;
                        let parked = self.shared.ec.park_if(|| {
                            !self.finished() && self.shared.stealers.iter().all(|s| s.is_empty())
                        });
                        if parked && !parked_episode {
                            parked_episode = true;
                            stats.parks += 1;
                            tbuf.record(NEventKind::Park);
                        }
                    }
                }
            }
        }
        tbuf.record(NEventKind::RunEnd);
    }

    /// True when the run is over (all tasks done, aborted by a
    /// sibling's panic, or cancelled).
    fn finished(&self) -> bool {
        self.shared.remaining.load(Ordering::Acquire) == 0
            || self.shared.panicked.load(Ordering::Relaxed)
            || self.cancelled()
    }

    /// Has this run's cancel token (if any) been set?
    fn cancelled(&self) -> bool {
        self.cmd.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// Seed this worker's own deque for the run. Every worker seeds
    /// only itself, so no cross-thread deque hand-off exists; a worker
    /// that races ahead simply finds deques empty and sweeps again.
    fn seed(&self) {
        let n = self.cmd.n;
        let workers = self.shared.workers;
        match (self.cmd.mode, self.cmd.granularity) {
            // Work-pulling: everything starts on worker 0, as one
            // range (split on demand) or as per-index unit ranges.
            (Distribution::Steal, Granularity::LazySplit) => {
                if self.me == 0 {
                    self.local.push(Range32::new(0, n as u32));
                }
            }
            (Distribution::Steal, Granularity::Fixed) => {
                if self.me == 0 {
                    self.local
                        .push_iter((0..n as u32).map(|i| Range32::new(i, i + 1)));
                }
            }
            // Static pushing: each worker takes its share up front and
            // never steals.
            (Distribution::Push, Granularity::LazySplit) => {
                let (lo, hi) = block_share(n, workers, self.me);
                if lo < hi {
                    self.local.push(Range32::new(lo, hi));
                }
            }
            (Distribution::Push, Granularity::Fixed) => {
                self.local.push_iter(
                    (self.me..n as usize)
                        .step_by(workers)
                        .map(|i| Range32::new(i as u32, i as u32 + 1)),
                );
            }
        }
    }

    /// Execute a range: sequentially from the low end, splitting the
    /// upper half off whenever the local deque runs dry (thief demand).
    /// `stolen` records how the range was acquired, for the directly
    /// counted `tasks_local`/`tasks_stolen` stats.
    fn process(
        &self,
        range: Range32,
        stolen: bool,
        split: bool,
        stats: &mut WorkerStats,
        tbuf: &mut TraceBuf,
    ) {
        let mut lo = range.lo;
        let mut hi = range.hi;
        debug_assert!(lo < hi);
        tbuf.record(NEventKind::ExecStart);
        let first = lo;
        while lo < hi {
            if split && hi - lo > 1 && self.local.is_empty() {
                let mid = lo + (hi - lo) / 2;
                self.local.push(Range32::new(mid, hi));
                stats.splits += 1;
                tbuf.record(NEventKind::Split { exposed: hi - mid });
                self.shared.ec.notify_all();
                hi = mid;
            }
            (self.cmd.runner)(lo as u64);
            stats.ran += 1;
            if stolen {
                stats.stolen += 1;
            } else {
                stats.local += 1;
            }
            lo += 1;
            if self.shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task of the run: release every parked worker.
                self.shared.ec.notify_all();
            }
        }
        // The whole executed span is contiguous: splits only ever push
        // the *upper* half away, so this call ran exactly `first..lo`.
        tbuf.record(NEventKind::ExecEnd {
            count: lo - first,
            stolen,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Squares(usize);

    impl Job for Squares {
        type Out = u64;
        fn len(&self) -> usize {
            self.0
        }
        fn run(&self, idx: usize) -> u64 {
            (idx as u64) * (idx as u64)
        }
    }

    /// Jobs longer than the per-run cap (u32::MAX in production,
    /// shrunk here) run as consecutive chunks: every task exactly
    /// once, results in order, counters summed — never a silent
    /// index truncation.
    #[test]
    fn long_jobs_run_in_chunks_without_truncation() {
        for cfg in [NativeConfig::steal(3), NativeConfig::push(3)] {
            let mut pool = Pool::new(&cfg);
            pool.set_run_cap_for_tests(10);
            let out = pool.try_execute(&Squares(25)).unwrap();
            let expect: Vec<u64> = (0..25u64).map(|i| i * i).collect();
            assert_eq!(out.values, expect, "{cfg:?}");
            assert_eq!(out.stats.tasks_run, 25, "{cfg:?}");
            assert_eq!(out.stats.per_worker.iter().sum::<u64>(), 25, "{cfg:?}");
            assert_eq!(out.stats.per_worker.len(), 3, "{cfg:?}");
        }
    }

    /// Chunked runs trace like any other: one RunStart per worker per
    /// chunk, task events reconciling with the merged counters, and a
    /// single monotone time axis across chunks (they share the run's
    /// WallClock epoch).
    #[test]
    fn chunked_runs_trace_and_reconcile() {
        let mut pool = Pool::new(&NativeConfig::steal(2).with_trace());
        pool.set_run_cap_for_tests(10);
        let out = pool.try_execute(&Squares(25)).unwrap();
        assert_eq!(out.stats.tasks_run, 25);
        assert_eq!(out.trace_dropped, 0);
        let trace = out.trace.as_ref().expect("traced run returns a tracer");
        let c = rph_trace::Counters::from_tracer(trace);
        assert_eq!(c.native_tasks, 25);
        // 25 tasks / cap 10 = 3 chunks × 2 workers.
        assert_eq!(c.native_runs, 6);
        for cap in 0..2 {
            let pc = rph_trace::Counters::for_cap(trace, CapId(cap));
            assert_eq!(pc.native_tasks, out.stats.per_worker[cap as usize]);
        }
        // merged() would panic in debug if per-cap times regressed
        // across chunk boundaries; assert order explicitly anyway.
        let merged = trace.merged();
        assert!(merged.windows(2).all(|w| w[0].time <= w[1].time));
    }

    /// The PR 6 bugfix contract: a panicking job surfaces as an error
    /// on the calling thread and the *same* pool keeps serving
    /// subsequent runs on its surviving workers.
    #[test]
    fn pool_survives_a_panicking_job_and_keeps_serving() {
        struct Exploding;
        impl Job for Exploding {
            type Out = u64;
            fn len(&self) -> usize {
                16
            }
            fn run(&self, idx: usize) -> u64 {
                assert!(idx != 7, "boom");
                idx as u64
            }
        }
        let mut pool = Pool::new(&NativeConfig::steal(3));
        for round in 0..3 {
            let err = pool.try_execute(&Exploding);
            assert!(err.is_err(), "round {round}: panic must surface as Err");
            let out = pool.try_execute(&Squares(30)).unwrap();
            let expect: Vec<u64> = (0..30u64).map(|i| i * i).collect();
            assert_eq!(out.values, expect, "round {round}: pool must keep serving");
            assert_eq!(out.stats.tasks_run, 30, "round {round}");
        }
    }

    #[test]
    fn pre_cancelled_run_does_no_work() {
        let mut pool = Pool::new(&NativeConfig::steal(2));
        let token = CancelToken::new();
        token.cancel();
        let err = pool.try_execute_cancellable(&Squares(1000), &token);
        assert_eq!(err.unwrap_err(), RunError::Cancelled);
        // The pool is unaffected: a fresh token runs normally.
        let out = pool.try_execute_cancellable(&Squares(10), &CancelToken::new());
        assert_eq!(out.unwrap().stats.tasks_run, 10);
    }

    /// Cancellation is observed at range boundaries: with fixed
    /// granularity every task is its own range, so once a task sets
    /// the token, each worker finishes at most its in-flight range and
    /// stops — far short of the full job.
    #[test]
    fn cancel_mid_run_is_observed_within_a_range() {
        struct SelfCancelling {
            token: CancelToken,
            ran: AtomicU64,
        }
        impl Job for SelfCancelling {
            type Out = u64;
            fn len(&self) -> usize {
                4096
            }
            fn run(&self, idx: usize) -> u64 {
                self.ran.fetch_add(1, Ordering::Relaxed);
                // The owner pops the *top* index first (LIFO), a thief
                // steals the *bottom* index first (FIFO end) — so the
                // first task either thread executes sets the token.
                if idx == 0 || idx == 4095 {
                    self.token.cancel();
                }
                idx as u64
            }
        }
        let mut pool = Pool::new(&NativeConfig::steal(2).with_granularity(Granularity::Fixed));
        let job = SelfCancelling {
            token: CancelToken::new(),
            ran: AtomicU64::new(0),
        };
        let err = pool.try_execute_cancellable(&job, &job.token);
        assert_eq!(err.unwrap_err(), RunError::Cancelled);
        let ran = job.ran.load(Ordering::Relaxed);
        // The first executed task set the token; each worker then
        // finishes at most the range already in flight before its next
        // pop observes it. Unit ranges → a handful of tasks, tops.
        assert!(
            ran < 64,
            "cancellation not observed at range boundaries ({ran} tasks ran)"
        );
        // And the pool still serves the next run.
        let out = pool.try_execute(&Squares(12)).unwrap();
        assert_eq!(out.stats.tasks_run, 12);
    }
}
