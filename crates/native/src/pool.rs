//! The persistent worker pool with adaptive-granularity scheduling.
//!
//! [`Pool`] spawns its OS workers **once** and accepts repeated
//! [`Pool::execute`] calls: wave-structured workloads (APSP issues one
//! run per pivot) reuse the same threads and deques instead of paying a
//! full spawn/join barrier per wave. Within a run:
//!
//! * Tasks travel as packed `(lo, hi)` index ranges
//!   ([`rph_deque::Range32`] — two `u32`s in the deque's `u64` slot).
//! * **Lazy range splitting** ([`Granularity::LazySplit`]): a worker
//!   executes its range sequentially from the low end, but before each
//!   index checks whether its own deque has gone empty — the signal
//!   that thieves are hungry — and if so pushes the upper half off as a
//!   new stealable range. Granularity thus adapts to observed demand:
//!   a lone worker runs the whole job with O(log n) scheduling actions,
//!   while under contention ranges fission until every core is fed.
//! * Thieves use [`Stealer::steal_batch_and_pop`], landing up to half
//!   the victim's elements in their own deque per probe.
//! * Idle workers spin for a bounded number of fruitless sweeps, then
//!   park on the [`EventCount`] until a push or run completion wakes
//!   them (see `park.rs` for the lost-wakeup argument).

use crate::executor::{
    Distribution, Granularity, Job, NativeConfig, NativeOutcome, NativeStats, ResultHeap,
};
use crate::park::EventCount;
use rph_deque::chase_lev::{self, BatchSteal, Stealer, Worker};
use rph_deque::Range32;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Fruitless full sweeps over every victim before a worker parks.
const SPIN_SWEEPS: usize = 64;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One run, as published to the workers. The runner reference is
/// lifetime-erased; see the safety comment in [`Pool::execute`].
#[derive(Clone, Copy)]
struct RunCmd {
    runner: &'static (dyn Fn(u64) + Sync),
    n: u64,
    mode: Distribution,
    granularity: Granularity,
}

/// Per-worker, per-run counters, accumulated without synchronisation
/// and merged under the control lock at run end.
#[derive(Debug, Clone, Default)]
struct WorkerStats {
    ran: u64,
    local: u64,
    stolen: u64,
    retries: u64,
    empties: u64,
    steal_ops: u64,
    batch_moved: u64,
    splits: u64,
    parks: u64,
}

/// State guarded by the control mutex: run hand-off and completion.
struct Ctrl {
    run_seq: u64,
    cmd: Option<RunCmd>,
    done: usize,
    worker_stats: Vec<WorkerStats>,
    shutdown: bool,
}

/// State shared between the pool handle and its workers.
struct Shared {
    ctrl: Mutex<Ctrl>,
    start_cv: Condvar,
    done_cv: Condvar,
    /// Tasks not yet executed in the current run.
    remaining: AtomicU64,
    /// Set when any worker's task panicked; aborts the run.
    panicked: AtomicBool,
    ec: EventCount,
    stealers: Vec<Stealer<Range32>>,
    workers: usize,
}

/// A persistent pool of worker threads executing [`Job`]s.
///
/// Workers are spawned by [`Pool::new`] and joined on drop; every
/// [`Pool::execute`] in between reuses them. `execute` takes `&mut
/// self` — runs are strictly sequential per pool.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    mode: Distribution,
    granularity: Granularity,
}

impl Pool {
    /// Spawn `cfg.workers` threads, each owning a Chase–Lev deque of
    /// `cfg.deque_cap` initial slots (deques grow on demand).
    pub fn new(cfg: &NativeConfig) -> Pool {
        let workers = cfg.workers.max(1);
        let mut owners: Vec<Worker<Range32>> = Vec::with_capacity(workers);
        let mut stealers: Vec<Stealer<Range32>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (w, s) = chase_lev::new::<Range32>(cfg.deque_cap);
            owners.push(w);
            stealers.push(s);
        }
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                run_seq: 0,
                cmd: None,
                done: 0,
                worker_stats: vec![WorkerStats::default(); workers],
                shutdown: false,
            }),
            start_cv: Condvar::new(),
            done_cv: Condvar::new(),
            remaining: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            ec: EventCount::new(),
            stealers,
            workers,
        });
        let handles = owners
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rph-native-{me}"))
                    .spawn(move || worker_main(me, local, shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            mode: cfg.mode,
            granularity: cfg.granularity,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Run every task of `job` on the pool's workers and return the
    /// results in task order. Semantics are identical to
    /// [`crate::execute`]; only the thread lifecycle differs.
    pub fn execute<J: Job>(&mut self, job: &J) -> NativeOutcome<J::Out> {
        let n = job.len();
        let workers = self.shared.workers;
        assert!(n < u32::MAX as usize, "job too large for packed u32 ranges");
        if n == 0 {
            return NativeOutcome {
                values: Vec::new(),
                wall: Duration::ZERO,
                stats: NativeStats {
                    per_worker: vec![0; workers],
                    ..NativeStats::default()
                },
            };
        }

        let heap = ResultHeap::new(n);
        let runner = |i: u64| heap.publish(i as usize, job.run(i as usize));
        let runner_ref: &(dyn Fn(u64) + Sync) = &runner;
        // SAFETY: workers call `runner` only between observing the new
        // `run_seq` and incrementing `done`; this function blocks until
        // `done == workers` before returning, so the erased borrow of
        // `heap`/`job` strictly outlives every use. `cmd` is cleared
        // below before the borrow expires.
        let runner_static: &'static (dyn Fn(u64) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(u64) + Sync), _>(runner_ref) };

        self.shared.panicked.store(false, Ordering::SeqCst);
        self.shared.remaining.store(n as u64, Ordering::SeqCst);
        let start = Instant::now();
        let stats = {
            let mut ctrl = lock(&self.shared.ctrl);
            ctrl.cmd = Some(RunCmd {
                runner: runner_static,
                n: n as u64,
                mode: self.mode,
                granularity: self.granularity,
            });
            ctrl.run_seq += 1;
            ctrl.done = 0;
            for s in ctrl.worker_stats.iter_mut() {
                *s = WorkerStats::default();
            }
            self.shared.start_cv.notify_all();
            while ctrl.done < workers {
                ctrl = self
                    .shared
                    .done_cv
                    .wait(ctrl)
                    .unwrap_or_else(|e| e.into_inner());
            }
            ctrl.cmd = None;
            collect_stats(&ctrl.worker_stats)
        };
        let wall = start.elapsed();

        if self.shared.panicked.load(Ordering::SeqCst) {
            panic!("a worker panicked during a native run");
        }
        debug_assert_eq!(self.shared.remaining.load(Ordering::SeqCst), 0);
        assert_eq!(stats.tasks_run, n as u64, "tasks left behind");
        NativeOutcome {
            values: heap.into_values(),
            wall,
            stats,
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut ctrl = lock(&self.shared.ctrl);
            ctrl.shutdown = true;
            self.shared.start_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn collect_stats(per_worker: &[WorkerStats]) -> NativeStats {
    let mut out = NativeStats {
        per_worker: per_worker.iter().map(|s| s.ran).collect(),
        ..NativeStats::default()
    };
    for s in per_worker {
        out.tasks_run += s.ran;
        out.tasks_local += s.local;
        out.tasks_stolen += s.stolen;
        out.steal_retries += s.retries;
        out.steal_empties += s.empties;
        out.steal_ops += s.steal_ops;
        out.batch_moved += s.batch_moved;
        out.splits += s.splits;
        out.parks += s.parks;
    }
    out
}

/// `worker`'s contiguous share of `[0, n)` under static block
/// partitioning.
fn block_share(n: u64, workers: usize, worker: usize) -> (u32, u32) {
    let w = workers as u64;
    let lo = (n * worker as u64 / w) as u32;
    let hi = (n * (worker as u64 + 1) / w) as u32;
    (lo, hi)
}

fn worker_main(me: usize, local: Worker<Range32>, shared: Arc<Shared>) {
    let mut seen_seq = 0u64;
    loop {
        // Wait for the next run (or shutdown).
        let cmd = {
            let mut ctrl = lock(&shared.ctrl);
            loop {
                if ctrl.shutdown {
                    return;
                }
                if ctrl.run_seq != seen_seq {
                    seen_seq = ctrl.run_seq;
                    break ctrl.cmd.expect("run_seq bumped without a command");
                }
                ctrl = shared
                    .start_cv
                    .wait(ctrl)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };

        let mut stats = WorkerStats::default();
        let run = RunCtx {
            me,
            local: &local,
            shared: &shared,
            cmd,
        };
        if catch_unwind(AssertUnwindSafe(|| run.run(&mut stats))).is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
            shared.ec.notify_all();
        }
        if shared.panicked.load(Ordering::SeqCst) {
            // Abandoned run: clear leftovers so they cannot leak into
            // the next run's index space.
            while local.pop().is_some() {}
        }

        let mut ctrl = lock(&shared.ctrl);
        ctrl.worker_stats[me] = stats;
        ctrl.done += 1;
        if ctrl.done == shared.workers {
            shared.done_cv.notify_all();
        }
    }
}

/// Everything one worker needs for one run.
struct RunCtx<'a> {
    me: usize,
    local: &'a Worker<Range32>,
    shared: &'a Shared,
    cmd: RunCmd,
}

impl RunCtx<'_> {
    fn run(&self, stats: &mut WorkerStats) {
        let workers = self.shared.workers;
        let n = self.cmd.n;
        self.seed();
        // Wake anyone who parked before our seed landed (a fast
        // sibling can reach the idle path before worker 0 seeds).
        self.shared.ec.notify_all();

        // Splitting only pays when someone can steal the exposed half.
        let split = self.cmd.granularity == Granularity::LazySplit
            && self.cmd.mode == Distribution::Steal
            && workers > 1;

        'run: loop {
            // Drain the local pool (owner end, LIFO).
            while let Some(r) = self.local.pop() {
                self.process(r, false, split, stats);
            }
            if self.cmd.mode == Distribution::Push {
                // Static distribution: an empty local deque means this
                // worker is done.
                break;
            }
            debug_assert!(n > 0);
            // Work-pulling: probe the other deques until a steal lands
            // or the run finishes. Lost CAS races back off; fruitless
            // sweeps first spin, then park.
            let mut backoff = 1u32;
            let mut fruitless = 0usize;
            loop {
                if self.finished() {
                    break 'run;
                }
                let mut contended = false;
                let mut got = None;
                for d in 0..workers - 1 {
                    let victim = (self.me + 1 + d) % workers;
                    match self.shared.stealers[victim].steal_batch_and_pop(self.local) {
                        BatchSteal::Success { first, moved } => {
                            stats.steal_ops += 1;
                            stats.batch_moved += moved as u64;
                            if moved > 0 {
                                // The transferred tail is stealable
                                // from our deque now — tell sleepers.
                                self.shared.ec.notify_all();
                            }
                            got = Some(first);
                            break;
                        }
                        BatchSteal::Retry => {
                            stats.retries += 1;
                            contended = true;
                        }
                        BatchSteal::Empty => {
                            stats.empties += 1;
                        }
                    }
                }
                if let Some(r) = got {
                    self.process(r, true, split, stats);
                    continue 'run;
                }
                if contended {
                    for _ in 0..backoff {
                        std::hint::spin_loop();
                    }
                    backoff = (backoff * 2).min(1 << 10);
                    fruitless = 0;
                } else {
                    backoff = 1;
                    fruitless += 1;
                    if fruitless < SPIN_SWEEPS {
                        std::thread::yield_now();
                    } else {
                        fruitless = 0;
                        let parked = self.shared.ec.park_if(|| {
                            !self.finished() && self.shared.stealers.iter().all(|s| s.is_empty())
                        });
                        if parked {
                            stats.parks += 1;
                        }
                    }
                }
            }
        }
    }

    /// True when the run is over (all tasks done, or aborted by a
    /// sibling's panic).
    fn finished(&self) -> bool {
        self.shared.remaining.load(Ordering::Acquire) == 0
            || self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Seed this worker's own deque for the run. Every worker seeds
    /// only itself, so no cross-thread deque hand-off exists; a worker
    /// that races ahead simply finds deques empty and sweeps again.
    fn seed(&self) {
        let n = self.cmd.n;
        let workers = self.shared.workers;
        match (self.cmd.mode, self.cmd.granularity) {
            // Work-pulling: everything starts on worker 0, as one
            // range (split on demand) or as per-index unit ranges.
            (Distribution::Steal, Granularity::LazySplit) => {
                if self.me == 0 {
                    self.local.push(Range32::new(0, n as u32));
                }
            }
            (Distribution::Steal, Granularity::Fixed) => {
                if self.me == 0 {
                    self.local
                        .push_iter((0..n as u32).map(|i| Range32::new(i, i + 1)));
                }
            }
            // Static pushing: each worker takes its share up front and
            // never steals.
            (Distribution::Push, Granularity::LazySplit) => {
                let (lo, hi) = block_share(n, workers, self.me);
                if lo < hi {
                    self.local.push(Range32::new(lo, hi));
                }
            }
            (Distribution::Push, Granularity::Fixed) => {
                self.local.push_iter(
                    (self.me..n as usize)
                        .step_by(workers)
                        .map(|i| Range32::new(i as u32, i as u32 + 1)),
                );
            }
        }
    }

    /// Execute a range: sequentially from the low end, splitting the
    /// upper half off whenever the local deque runs dry (thief demand).
    /// `stolen` records how the range was acquired, for the directly
    /// counted `tasks_local`/`tasks_stolen` stats.
    fn process(&self, range: Range32, stolen: bool, split: bool, stats: &mut WorkerStats) {
        let mut lo = range.lo;
        let mut hi = range.hi;
        debug_assert!(lo < hi);
        while lo < hi {
            if split && hi - lo > 1 && self.local.is_empty() {
                let mid = lo + (hi - lo) / 2;
                self.local.push(Range32::new(mid, hi));
                stats.splits += 1;
                self.shared.ec.notify_all();
                hi = mid;
            }
            (self.cmd.runner)(lo as u64);
            stats.ran += 1;
            if stolen {
                stats.stolen += 1;
            } else {
                stats.local += 1;
            }
            lo += 1;
            if self.shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task of the run: release every parked worker.
                self.shared.ec.notify_all();
            }
        }
    }
}
