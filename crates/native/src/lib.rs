//! # rph-native — real-thread work-stealing execution
//!
//! Everything else in this repository measures the paper's effects in
//! *virtual* time on the deterministic simulator. This crate is the
//! second backend: the same workload decompositions on **real OS
//! threads**, scheduled through the lock-free Chase–Lev deque of
//! [`rph_deque::chase_lev`] — the data structure §IV.A.2 of the paper
//! credits for eliminating "any hand-shaking when sharing work".
//!
//! Design (v1, deliberately Eden-shaped):
//!
//! * A workload is decomposed into a flat set of **pure tasks**
//!   ([`Job`]): `run(i)` reads only the job description and produces a
//!   fully-evaluated result. There is no shared mutable graph heap —
//!   like Eden processes, workers "communicate only WHNF data", here
//!   by writing each task's result into its slot of a shared
//!   [`ResultHeap`] exactly once.
//! * One worker per requested core. Each worker owns a
//!   `chase_lev::Worker` task deque; every other worker holds a
//!   `Stealer` handle onto it.
//! * Two distribution policies mirror the paper's push-vs-steal
//!   comparison ([`Distribution`]): `Push` statically round-robins the
//!   tasks over all workers up front (GHC 6.8's work-pushing, minus
//!   the scheduler-delay pathology); `Steal` seeds every task on
//!   worker 0 and lets idle workers pull via the lock-free steal path,
//!   retrying `Steal::Retry` with exponential backoff.
//!
//! The deterministic simulator remains the correctness oracle: the
//! differential tests (in `rph-workloads` and the top-level
//! integration suite) assert that native results are bit-identical to
//! `GphRuntime` results for every workload at 1, 2, 4 and 8 workers.

mod executor;

pub use executor::{
    execute, Distribution, Job, NativeConfig, NativeOutcome, NativeStats, ResultHeap,
};
