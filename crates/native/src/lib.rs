//! # rph-native — real-thread work-stealing execution
//!
//! Everything else in this repository measures the paper's effects in
//! *virtual* time on the deterministic simulator. This crate is the
//! second backend: the same workload decompositions on **real OS
//! threads**, scheduled through the lock-free Chase–Lev deque of
//! [`rph_deque::chase_lev`] — the data structure §IV.A.2 of the paper
//! credits for eliminating "any hand-shaking when sharing work".
//!
//! Design (v2, persistent pool + adaptive granularity):
//!
//! * A workload is decomposed into a flat set of **pure tasks**
//!   ([`Job`]): `run(i)` reads only the job description and produces a
//!   fully-evaluated result. There is no shared mutable graph heap —
//!   like Eden processes, workers "communicate only WHNF data", here
//!   by writing each task's result into its slot of a shared
//!   [`ResultHeap`] exactly once.
//! * A [`Pool`] spawns one worker per requested core **once** and
//!   accepts repeated [`Pool::try_execute`] calls — wave-structured
//!   workloads (APSP's n pivot waves) reuse the same threads instead
//!   of paying n spawn/join barriers. [`execute`] remains the one-shot
//!   convenience wrapper.
//! * Each worker owns a `chase_lev::Worker` deque of packed
//!   `(lo, hi)` index ranges (`rph_deque::Range32`); every other
//!   worker holds a `Stealer` handle onto it.
//! * Two distribution policies mirror the paper's push-vs-steal
//!   comparison ([`Distribution`]); two granularity policies
//!   ([`Granularity`]) put PR 1's fixed per-task dealing and the
//!   adaptive **lazy range splitting** side by side: ranges execute
//!   sequentially at the owner end and fission only under observed
//!   thief demand.
//! * Thieves take up to half a victim's deque per probe
//!   (`steal_batch_and_pop`), visiting victims in a **randomized
//!   order** by default ([`StealPolicy`]: a per-worker xorshift
//!   permutation per sweep, seeded from `NativeConfig::seed` so runs
//!   replay identically; fixed round-robin kept as the ablation);
//!   idle workers spin briefly, then **park** on a Condvar-backed
//!   eventcount instead of busy-waiting, woken by new pushes or run
//!   completion. Hot shared words (deque `top`/`bottom`, park flags,
//!   per-worker stats slots, run state) are cache-line padded
//!   (`rph_deque::CachePadded`) against false sharing.
//! * With [`NativeConfig::trace`] set, every worker records
//!   wall-clock events (run start/end, executed ranges, steal
//!   successes/retries/empties, batch transfers, lazy splits,
//!   park/unpark) into a pre-allocated lock-free buffer, drained by
//!   `Pool::try_execute` into an [`rph_trace::Tracer`] — so native runs
//!   render the same per-core activity timelines, CSVs and occupancy
//!   fractions as the simulators (the paper's Fig. 2/4 view), with
//!   time in nanoseconds.
//!
//! The deterministic simulator remains the correctness oracle: the
//! differential tests (in `rph-workloads` and the top-level
//! integration suite) assert that native results are bit-identical to
//! `GphRuntime` results for every workload at 1, 2, 3, 4, 5 and 8
//! workers, under both policies and both granularities.

//! ## The second native backend: Eden-style message passing
//!
//! Since PR 5 this crate hosts *both* sides of the paper's comparison
//! on real threads, selected by [`NativeConfig::backend`]:
//!
//! * [`BackendKind::Steal`] — the shared-heap work-stealing executor
//!   above ([`Pool`], [`execute`]).
//! * [`BackendKind::Eden`] — one OS thread per PE with **private
//!   working memory**, communicating only fully-evaluated [`Packet`]s
//!   over bounded SPSC [`channel`]s, through the three [`skeletons`]
//!   the paper's workloads need: [`skeletons::par_map`] (static
//!   farm), [`skeletons::master_worker`] (demand-driven farm) and
//!   [`skeletons::ring`] (wavefronts). Channel sends, receives and
//!   blocks land in the same wall-clock trace machinery, so Eden runs
//!   render the same per-core timelines — now with message events.

mod cancel;
pub mod channel;
mod eden;
mod error;
mod executor;
mod park;
mod pool;
pub mod skeletons;
mod trace;
mod victim;

pub use cancel::CancelToken;
pub use channel::{bounded, Packet, Receiver, Sender, TrySendError, Wordsize};
pub use error::{EdenIncomplete, JobPanicked, RunError};
pub use executor::{
    execute, try_execute, BackendKind, Distribution, Granularity, Job, NativeConfig, NativeOutcome,
    NativeStats, ResultHeap, StealPolicy, DEFAULT_CHAN_CAP, DEFAULT_TRACE_CAP,
};
pub use pool::Pool;
pub use skeletons::{
    exchange, master_worker, par_map, par_map_reduce, ring, try_exchange, try_master_worker,
    try_par_map, try_par_map_reduce, try_ring, ExchangeJob, RingJob, Skeleton,
};
