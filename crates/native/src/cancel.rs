//! Cooperative cancellation for native runs.

use rph_deque::CachePadded;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancel flag polled cooperatively by the pool's workers.
///
/// Cloning is cheap (an `Arc` bump); every clone observes the same
/// flag, so a server can hand one end to the submitter and thread the
/// other into the run. Cancellation is **cooperative and one-way**:
/// once set the flag stays set, workers stop at the next *range
/// boundary* (a range already being executed runs to its end — with
/// lazy splitting under no thief demand that can be the whole job, so
/// latency-sensitive callers should also poll inside their task
/// bodies), and a worker parked on the eventcount notices within the
/// park safety timeout (10 ms). The run then reports
/// [`crate::RunError::Cancelled`] and its partial results are
/// discarded.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    // Its own cache line: the flag sits on every worker's range-pop
    // path, next to nothing else it should false-share with.
    flag: Arc<CachePadded<AtomicBool>>,
}

impl CancelToken {
    /// A fresh, unset token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has [`Self::cancel`] been called (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}
