//! Wall-clock event tracing for the pool workers.
//!
//! Every optimisation in the paper's §IV was motivated by looking at
//! per-capability activity traces, not aggregate counters — so the
//! native backend must produce the same Fig-2-style timelines the
//! simulators do. The constraint is the hot path: workers must not
//! take locks or allocate while scheduling. The design:
//!
//! * Each worker owns a [`TraceBuf`]: a buffer of compact [`NEvent`]
//!   records **pre-allocated once** at thread start
//!   (`NativeConfig::trace_cap` slots). Recording is a bounds check, a
//!   monotonic clock read and a slot write — no locks, no allocation,
//!   no cross-thread traffic. When tracing is disabled the record call
//!   is a single predictable branch on a thread-local bool, so
//!   untraced runs pay nothing measurable.
//! * The buffer is bounded: once full, further events are counted in
//!   `dropped` instead of recorded (the counters in
//!   [`crate::NativeStats`] remain exact regardless). The
//!   reconciliation tests assert `dropped == 0` before comparing event
//!   totals against counters.
//! * At run end — off the hot path, under the pool's control lock each
//!   worker already takes to publish its stats — the buffer is flushed
//!   to the coordinator, and `Pool::try_execute` maps the compact records
//!   into [`rph_trace`] [`Event`]s (state changes plus the native
//!   event kinds) on one [`Tracer`] row per worker. All of the
//!   existing tooling — ASCII timelines, CSV, SVG, occupancy
//!   fractions — then applies unchanged, with time in nanoseconds.

use rph_trace::{CapId, EventKind, State, Time, Tracer, WallClock};

/// A compact trace record: nanoseconds since the run epoch plus what
/// happened. Kept `Copy` and small so the hot-path write is a couple
/// of stores.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NEvent {
    t: Time,
    kind: NEventKind,
}

/// What a worker can observe about itself. `u32` payloads keep the
/// record small; worker ids and range lengths both fit by
/// construction.
#[derive(Debug, Clone, Copy)]
pub(crate) enum NEventKind {
    /// This worker entered a run of `tasks` tasks.
    RunStart { tasks: u64 },
    /// This worker finished the run.
    RunEnd,
    /// Started executing a range (state goes Running).
    ExecStart,
    /// Finished a contiguous executed range of `count` tasks (state
    /// goes back to Runnable — popping or stealing).
    ExecEnd { count: u32, stolen: bool },
    /// A steal from `victim` succeeded, batch-moving `moved` extras.
    StealOk { victim: u32, moved: u32 },
    /// A steal from `victim` in a *different shard* succeeded —
    /// hierarchical victim selection exhausted the local shard first.
    StealOkRemote { victim: u32, moved: u32 },
    /// A steal from `victim` lost its CAS race.
    StealRetry { victim: u32 },
    /// `victim`'s deque was empty.
    StealEmpty { victim: u32 },
    /// A lazy split exposed `exposed` tasks as a new stealable range.
    Split { exposed: u32 },
    /// This worker parked (one event per idle episode).
    Park,
    /// This worker found work again after parking.
    Unpark,
    /// Eden backend: a packet of `words` heap words left for PE `to`.
    MsgSend {
        to: u32,
        words: u64,
        tag: &'static str,
    },
    /// Eden backend: a packet of `words` heap words arrived from PE
    /// `from`.
    MsgRecv {
        from: u32,
        words: u64,
        tag: &'static str,
    },
    /// Eden backend: the channel to PE `to` was full — this PE blocks
    /// until the consumer drains it (back-pressure).
    BlockSend { to: u32 },
    /// Eden backend: the channel from PE `from` was empty — this PE
    /// blocks until a packet arrives.
    BlockRecv { from: u32 },
    /// Eden backend: the master found *every* result channel empty and
    /// blocks multiplexed on all of them (no single source).
    BlockRecvAny,
    /// Eden backend: a blocked channel operation completed.
    Unblock,
}

/// Per-worker, pre-allocated event buffer (see module docs).
pub(crate) struct TraceBuf {
    on: bool,
    clock: WallClock,
    events: Vec<NEvent>,
    cap: usize,
    dropped: u64,
}

impl TraceBuf {
    /// A buffer of `cap` slots, allocated up front; disabled buffers
    /// allocate nothing and never record.
    pub fn new(on: bool, cap: usize) -> Self {
        TraceBuf {
            on,
            clock: WallClock::start(),
            events: Vec::with_capacity(if on { cap } else { 0 }),
            cap,
            dropped: 0,
        }
    }

    /// Adopt the run's shared epoch so all workers (and the run's wall
    /// measurement) stamp on the same zero.
    pub fn begin_run(&mut self, clock: WallClock) {
        self.clock = clock;
    }

    /// Record `kind` now. The no-trace fast path is the first branch.
    #[inline]
    pub fn record(&mut self, kind: NEventKind) {
        if !self.on {
            return;
        }
        if self.events.len() < self.cap {
            let t = self.clock.now();
            self.events.push(NEvent { t, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// Move this run's records into `out` (the coordinator's per-worker
    /// slot) and return how many events were dropped; resets the buffer
    /// for the next run without giving up its allocation.
    pub fn flush_into(&mut self, out: &mut Vec<NEvent>) -> u64 {
        out.clear();
        out.extend_from_slice(&self.events);
        self.events.clear();
        std::mem::take(&mut self.dropped)
    }
}

/// Map one worker's compact records onto `tracer` row `cap`, emitting
/// both the native event kinds (for counter reconciliation) and the
/// state changes (for the timeline): Runnable while looking for work,
/// Running while executing a range, Idle while parked and after the
/// run ends.
pub(crate) fn map_events(tracer: &mut Tracer, cap: CapId, events: &[NEvent]) {
    let victim = |v: u32| CapId(v);
    for ev in events {
        let t = ev.t;
        match ev.kind {
            NEventKind::RunStart { tasks } => {
                tracer.state(cap, t, State::Runnable);
                tracer.record(cap, t, EventKind::RunStart { tasks });
            }
            NEventKind::RunEnd => {
                tracer.record(cap, t, EventKind::RunEnd);
                tracer.state(cap, t, State::Idle);
            }
            NEventKind::ExecStart => tracer.state(cap, t, State::Running),
            NEventKind::ExecEnd { count, stolen } => {
                tracer.record(
                    cap,
                    t,
                    EventKind::NativeExec {
                        count: count as u64,
                        stolen,
                    },
                );
                tracer.state(cap, t, State::Runnable);
            }
            NEventKind::StealOk { victim: v, moved } => tracer.record(
                cap,
                t,
                EventKind::NativeSteal {
                    victim: victim(v),
                    moved: moved as u64,
                },
            ),
            NEventKind::StealOkRemote { victim: v, moved } => tracer.record(
                cap,
                t,
                EventKind::NativeStealRemote {
                    victim: victim(v),
                    moved: moved as u64,
                },
            ),
            NEventKind::StealRetry { victim: v } => {
                tracer.record(cap, t, EventKind::NativeStealRetry { victim: victim(v) })
            }
            NEventKind::StealEmpty { victim: v } => {
                tracer.record(cap, t, EventKind::NativeStealEmpty { victim: victim(v) })
            }
            NEventKind::Split { exposed } => tracer.record(
                cap,
                t,
                EventKind::NativeSplit {
                    exposed: exposed as u64,
                },
            ),
            NEventKind::Park => {
                tracer.record(cap, t, EventKind::NativePark);
                tracer.state(cap, t, State::Idle);
            }
            NEventKind::Unpark => {
                tracer.record(cap, t, EventKind::NativeUnpark);
                tracer.state(cap, t, State::Runnable);
            }
            NEventKind::MsgSend { to, words, tag } => tracer.record(
                cap,
                t,
                EventKind::MsgSend {
                    to: CapId(to),
                    words,
                    tag,
                },
            ),
            NEventKind::MsgRecv { from, words, tag } => tracer.record(
                cap,
                t,
                EventKind::MsgRecv {
                    from: CapId(from),
                    words,
                    tag,
                },
            ),
            NEventKind::BlockSend { to } => {
                tracer.record(cap, t, EventKind::NativeBlockSend { to: CapId(to) });
                tracer.state(cap, t, State::Blocked);
            }
            NEventKind::BlockRecv { from } => {
                tracer.record(
                    cap,
                    t,
                    EventKind::NativeBlockRecv {
                        from: Some(CapId(from)),
                    },
                );
                tracer.state(cap, t, State::Blocked);
            }
            NEventKind::BlockRecvAny => {
                tracer.record(cap, t, EventKind::NativeBlockRecv { from: None });
                tracer.state(cap, t, State::Blocked);
            }
            NEventKind::Unblock => tracer.state(cap, t, State::Runnable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rph_trace::Counters;

    #[test]
    fn disabled_buffer_records_nothing_and_allocates_nothing() {
        let mut b = TraceBuf::new(false, 1024);
        assert_eq!(b.events.capacity(), 0);
        b.record(NEventKind::RunStart { tasks: 5 });
        let mut out = Vec::new();
        assert_eq!(b.flush_into(&mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn full_buffer_counts_drops_instead_of_growing() {
        let mut b = TraceBuf::new(true, 2);
        b.record(NEventKind::ExecStart);
        b.record(NEventKind::RunEnd);
        b.record(NEventKind::Park);
        assert_eq!(b.events.len(), 2);
        let mut out = Vec::new();
        assert_eq!(b.flush_into(&mut out), 1);
        assert_eq!(out.len(), 2);
        // The buffer is reset and keeps recording the next run.
        b.record(NEventKind::RunEnd);
        assert_eq!(b.flush_into(&mut out), 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn mapping_produces_reconcilable_counters_and_states() {
        let mut b = TraceBuf::new(true, 64);
        b.record(NEventKind::RunStart { tasks: 8 });
        b.record(NEventKind::StealEmpty { victim: 1 });
        b.record(NEventKind::StealOk {
            victim: 1,
            moved: 3,
        });
        b.record(NEventKind::StealOkRemote {
            victim: 2,
            moved: 4,
        });
        b.record(NEventKind::ExecStart);
        b.record(NEventKind::Split { exposed: 2 });
        b.record(NEventKind::ExecEnd {
            count: 6,
            stolen: true,
        });
        b.record(NEventKind::Park);
        b.record(NEventKind::Unpark);
        b.record(NEventKind::RunEnd);
        let mut out = Vec::new();
        b.flush_into(&mut out);
        let mut tracer = Tracer::new(1);
        map_events(&mut tracer, CapId(0), &out);
        let c = Counters::for_cap(&tracer, CapId(0));
        assert_eq!(c.native_runs, 1);
        // The remote arm feeds the steal totals too, so reconciliation
        // against `steal_ops` needs no topology awareness.
        assert_eq!(c.native_steals, 2);
        assert_eq!(c.native_remote_steals, 1);
        assert_eq!(c.native_batch_moved, 7);
        assert_eq!(c.native_steal_empties, 1);
        assert_eq!(c.native_splits, 1);
        assert_eq!(c.native_tasks, 6);
        assert_eq!(c.native_tasks_stolen, 6);
        assert_eq!(c.native_parks, 1);
        assert_eq!(c.native_unparks, 1);
    }
}
