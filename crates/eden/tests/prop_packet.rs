//! Property tests for Eden message serialisation: packets round-trip
//! arbitrary normal-form graphs, preserving values and sharing.

use proptest::prelude::*;
use rph_eden::packet::{pack, unpack};
use rph_heap::{Heap, NodeRef, ScId, Value};

/// A random normal-form value tree (indices point backwards: DAG with
/// sharing).
#[derive(Debug, Clone)]
enum Spec {
    Int(i64),
    Double(i32),
    Bool(bool),
    Nil,
    Cons(usize, usize),
    Tuple(Vec<usize>),
    Array(u8),
    Pap(Vec<usize>),
}

fn spec() -> impl Strategy<Value = Spec> {
    prop_oneof![
        any::<i64>().prop_map(Spec::Int),
        any::<i32>().prop_map(Spec::Double),
        any::<bool>().prop_map(Spec::Bool),
        Just(Spec::Nil),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Spec::Cons(a, b)),
        proptest::collection::vec(any::<usize>(), 2..4).prop_map(Spec::Tuple),
        (0u8..12).prop_map(Spec::Array),
        proptest::collection::vec(any::<usize>(), 0..3).prop_map(Spec::Pap),
    ]
}

fn build(heap: &mut Heap, specs: &[Spec]) -> NodeRef {
    let mut nodes: Vec<NodeRef> = Vec::new();
    for s in specs {
        let pick = |i: usize, nodes: &[NodeRef], heap: &mut Heap| {
            if nodes.is_empty() {
                heap.int(1)
            } else {
                nodes[i % nodes.len()]
            }
        };
        let n = match s {
            Spec::Int(i) => heap.int(*i),
            Spec::Double(d) => heap.alloc_value(Value::Double(*d as f64 / 3.0)),
            Spec::Bool(b) => heap.alloc_value(Value::Bool(*b)),
            Spec::Nil => heap.alloc_value(Value::Nil),
            Spec::Cons(a, b) => {
                let h = pick(*a, &nodes, heap);
                let t = pick(*b, &nodes, heap);
                heap.alloc_value(Value::Cons(h, t))
            }
            Spec::Tuple(fs) => {
                let fields: Vec<NodeRef> = fs.iter().map(|i| pick(*i, &nodes, heap)).collect();
                heap.alloc_value(Value::Tuple(fields.into()))
            }
            Spec::Array(len) => {
                heap.alloc_value(Value::DArray((0..*len).map(|x| x as f64 * 1.5).collect()))
            }
            Spec::Pap(args) => {
                let aa: Vec<NodeRef> = args.iter().map(|i| pick(*i, &nodes, heap)).collect();
                heap.alloc_value(Value::Pap {
                    sc: ScId(3),
                    args: aa.into(),
                })
            }
        };
        nodes.push(n);
    }
    *nodes.last().unwrap()
}

fn canon(heap: &Heap, root: NodeRef) -> String {
    fn go(
        heap: &Heap,
        r: NodeRef,
        ids: &mut std::collections::HashMap<NodeRef, usize>,
        out: &mut String,
    ) {
        let r = heap.resolve(r);
        if let Some(id) = ids.get(&r) {
            out.push_str(&format!("^{id}"));
            return;
        }
        ids.insert(r, ids.len());
        match heap.expect_value(r) {
            Value::Int(i) => out.push_str(&format!("i{i};")),
            Value::Double(d) => out.push_str(&format!("d{d};")),
            Value::Bool(b) => out.push_str(&format!("b{b};")),
            Value::Unit => out.push_str("u;"),
            Value::Nil => out.push_str("[];"),
            Value::Cons(h, t) => {
                out.push('(');
                go(heap, *h, ids, out);
                go(heap, *t, ids, out);
                out.push(')');
            }
            Value::Tuple(fs) => {
                out.push('<');
                for f in fs.iter() {
                    go(heap, *f, ids, out);
                }
                out.push('>');
            }
            Value::DArray(xs) => out.push_str(&format!("a{xs:?};")),
            Value::Pap { sc, args } => {
                out.push_str(&format!("p{};", sc.0));
                for a in args.iter() {
                    go(heap, *a, ids, out);
                }
            }
        }
    }
    let mut out = String::new();
    go(heap, root, &mut std::collections::HashMap::new(), &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// pack → unpack reproduces the graph exactly (values and sharing),
    /// and packing is deterministic.
    #[test]
    fn packet_roundtrip(specs in proptest::collection::vec(spec(), 1..50)) {
        let mut src = Heap::new();
        let root = build(&mut src, &specs);
        let p1 = pack(&src, root).expect("pack NF");
        let p2 = pack(&src, root).expect("pack NF again");
        prop_assert_eq!(&p1, &p2, "packing must be deterministic");

        let mut dst = Heap::new();
        let copied = unpack(&p1, &mut dst);
        prop_assert_eq!(canon(&src, root), canon(&dst, copied));

        // Round-trip again from the destination: a fixpoint.
        let p3 = pack(&dst, copied).expect("repack");
        prop_assert_eq!(p1.words(), p3.words());
        prop_assert_eq!(p1.len(), p3.len());
    }
}
