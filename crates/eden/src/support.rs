//! Program-side support for Eden: tuple selectors.
//!
//! A process whose result is an `n`-tuple gets one sender thread per
//! component; each sender evaluates `$sel_k_n result`, which forces the
//! tuple to WHNF (shared across the senders through the PE's heap) and
//! projects its component. Programs run under the Eden runtime must
//! install this module into their [`ProgramBuilder`].

use rph_heap::ScId;
use rph_machine::ir::{atom, case_tuple, v};
use rph_machine::ProgramBuilder;

/// Maximum tuple width supported by process outputs.
pub const MAX_TUPLE: usize = 4;

/// Ids of the installed selectors: `sel[n-2][k]` projects component
/// `k` (0-based) of an `n`-tuple, for `n` in `2..=MAX_TUPLE`.
#[derive(Debug, Clone, Copy)]
pub struct EdenSupport {
    sel: [[ScId; MAX_TUPLE]; MAX_TUPLE - 1],
}

impl EdenSupport {
    /// The selector for component `k` (0-based) of an `n`-tuple.
    pub fn selector(&self, n: usize, k: usize) -> ScId {
        assert!((2..=MAX_TUPLE).contains(&n), "tuple width {n} unsupported");
        assert!(k < n, "component {k} of {n}-tuple");
        self.sel[n - 2][k]
    }
}

/// Name of a selector supercombinator.
pub fn selector_name(n: usize, k: usize) -> String {
    format!("$sel_{k}_{n}")
}

/// Install the selectors into a program under construction.
pub fn install_support(b: &mut ProgramBuilder) -> EdenSupport {
    let mut sel = [[ScId(u32::MAX); MAX_TUPLE]; MAX_TUPLE - 1];
    for n in 2..=MAX_TUPLE {
        #[allow(clippy::needless_range_loop)] // k both names the selector and indexes `sel`
        for k in 0..n {
            // $sel_k_n t = case t of (x0..x_{n-1}) -> x_k
            // frame after case: [t, x0..x_{n-1}]
            sel[n - 2][k] = b.def(
                &selector_name(n, k),
                1,
                case_tuple(atom(v(0)), n, atom(v(1 + k))),
            );
        }
    }
    EdenSupport { sel }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rph_heap::{Heap, Value};
    use rph_machine::reference::run_seq;

    #[test]
    fn selectors_project() {
        let mut b = ProgramBuilder::new();
        let sup = install_support(&mut b);
        let prog = b.build();
        let mut heap = Heap::new();
        let a = heap.int(10);
        let c = heap.int(30);
        let bb = heap.int(20);
        let t = heap.alloc_value(Value::Tuple(vec![a, bb, c].into()));
        for (k, expect) in [(0, 10), (1, 20), (2, 30)] {
            let e = heap.alloc_thunk(sup.selector(3, k), vec![t]);
            let (r, _) = run_seq(&prog, &mut heap, e);
            assert_eq!(heap.expect_value(r).expect_int(), expect, "sel {k}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn wide_tuples_rejected() {
        let mut b = ProgramBuilder::new();
        let sup = install_support(&mut b);
        let _ = sup.selector(9, 0);
    }
}
