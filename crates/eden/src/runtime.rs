//! The Eden runtime: processes, channels, message passing, independent
//! per-PE garbage collection, and OS scheduling of virtual PEs onto
//! cores.

use crate::channel::{ChanId, ChanState, CommMode, Endpoint};
use crate::config::EdenConfig;
use crate::job::{Job, Msg, NativeCtx, NativeLogic, NativeStep, StreamPhase};
use crate::packet;
use crate::pe::{EdenTso, NativeTso, Pe};
use crate::support::EdenSupport;
use rph_heap::{Heap, NodeRef, ScId};
use rph_machine::{Machine, Program, RunCtx, StopReason};
use rph_sim::{CoreSet, DetRng};
use rph_trace::{CapId, EventKind, State, ThreadId, Time, Tracer};
use std::sync::Arc;

/// Counters for an Eden run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdenStats {
    pub processes: u64,
    pub messages: u64,
    pub message_words: u64,
    /// The subset of `messages` that crossed an inter-node link.
    /// Zero on a single-node topology.
    pub remote_messages: u64,
    /// Words put on inter-node links (payload + envelope). Zero on a
    /// single-node topology.
    pub remote_words: u64,
    pub threads_created: u64,
    pub blackhole_blocks: u64,
    /// Independent per-PE collections (no barrier involved).
    pub local_gcs: u64,
    /// Total virtual time spent in local GC pauses, summed over PEs.
    pub gc_time: Time,
    pub collected_words: u64,
}

/// Result of a completed run.
#[derive(Debug)]
pub struct RunOutcome {
    pub result: NodeRef,
    /// Virtual makespan (PE 0's clock when `main` finished).
    pub elapsed: Time,
    pub stats: EdenStats,
    pub tracer: Tracer,
}

/// What to spawn: the worker function and its channel wiring.
///
/// `f` must have arity `inputs.len()`. If `outputs.len() == 1` the
/// process result is sent directly; otherwise the result must be a
/// tuple of `outputs.len()` components, each sent by its own
/// concurrent sender thread (Eden's tuple `Trans` semantics).
#[derive(Debug, Clone)]
pub struct ProcSpec {
    pub f: ScId,
    pub inputs: Vec<(ChanId, CommMode)>,
    pub outputs: Vec<(CommMode, Endpoint)>,
}

/// The distributed-heap Eden runtime.
pub struct EdenRuntime {
    program: Arc<Program>,
    support: EdenSupport,
    config: EdenConfig,
    pes: Vec<Pe>,
    cores: CoreSet,
    tracer: Tracer,
    stats: EdenStats,
    #[allow(dead_code)]
    rng: DetRng,
    next_tid: u64,
    next_chan: u64,
    /// Last delivery time per ordered PE pair (`from * pes + to`).
    /// Message transport is FIFO per pair, as PVM guarantees: a later
    /// message never arrives before an earlier one, even when the
    /// bandwidth term would let a small message overtake a large one.
    /// Stream channels (and anything else relying on send order)
    /// depend on this.
    link_fifo: Vec<u64>,
}

impl EdenRuntime {
    /// Create a runtime. The program must have been built with
    /// [`crate::support::install_support`] (tuple selectors); its
    /// handle is passed so spawns can project tuple outputs.
    pub fn new(program: Arc<Program>, support: EdenSupport, config: EdenConfig) -> Self {
        assert!(config.pes >= 1, "need at least one PE");
        assert!(config.cores >= 1, "need at least one core");
        let pes = (0..config.pes)
            .map(|i| Pe::new(i as u32, config.alloc_area_words, config.checkpoint_words))
            .collect();
        let tracer = if config.trace {
            Tracer::new(config.pes)
        } else {
            Tracer::disabled(config.pes)
        };
        EdenRuntime {
            program,
            support,
            pes,
            cores: CoreSet::new(config.cores),
            tracer,
            stats: EdenStats::default(),
            rng: DetRng::new(config.seed),
            next_tid: 0,
            next_chan: 0,
            link_fifo: vec![0; config.pes * config.pes],
            config,
        }
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// Heap of a PE (PE 0 is the parent/main PE).
    pub fn heap(&self, pe: usize) -> &Heap {
        &self.pes[pe].heap
    }

    /// Mutable heap access (for building input graphs on PE 0).
    pub fn heap_mut(&mut self, pe: usize) -> &mut Heap {
        &mut self.pes[pe].heap
    }

    /// Pin a GC root on a PE.
    pub fn pin_root(&mut self, pe: usize, r: NodeRef) {
        self.pes[pe].pinned.push(r);
    }

    /// Allocate a bare placeholder (an updatable black hole) on a PE —
    /// used by natives that fill a result in directly.
    pub fn alloc_placeholder(&mut self, pe: usize) -> NodeRef {
        self.pes[pe].alloc_placeholder()
    }

    /// Allocate a fresh channel id.
    pub fn fresh_chan(&mut self) -> ChanId {
        let c = ChanId(self.next_chan);
        self.next_chan += 1;
        c
    }

    /// Create a receiving channel on `pe`: returns the channel id and
    /// the placeholder node that will hold the arriving data (for
    /// `Stream`, the placeholder is the list that grows as elements
    /// arrive).
    pub fn new_channel(&mut self, pe: usize, mode: CommMode) -> (ChanId, NodeRef) {
        let chan = self.fresh_chan();
        let placeholder = self.pes[pe].alloc_placeholder();
        let state = match mode {
            CommMode::Single => ChanState::Single { placeholder },
            CommMode::Stream => ChanState::Stream { tail: placeholder },
        };
        self.pes[pe].chans.insert(chan, state);
        (chan, placeholder)
    }

    /// Instantiate a process on `target_pe` (charged to PE 0, which is
    /// where skeletons run — Eden instantiation is eager). The spawn
    /// message carries the wiring; the target PE allocates input
    /// placeholders and starts sender threads when it processes it.
    pub fn spawn(&mut self, target_pe: usize, spec: ProcSpec) {
        assert!(target_pe < self.pes.len(), "no such PE {target_pe}");
        assert_eq!(
            self.program.sc(spec.f).arity,
            spec.inputs.len(),
            "process function arity must match its input channels"
        );
        assert!(
            !spec.outputs.is_empty(),
            "a process needs at least one output"
        );
        self.stats.processes += 1;
        self.pes[0].clock += self.config.costs.process_instantiate;
        let now = self.pes[0].clock;
        self.tracer.record(
            CapId(0),
            now,
            EventKind::ProcessInstantiated {
                on: CapId(target_pe as u32),
            },
        );
        let msg = Msg::Spawn {
            f: spec.f,
            inputs: spec.inputs,
            outputs: spec.outputs,
        };
        self.transmit(0, target_pe, msg);
    }

    /// Start a sender thread on `from_pe` that normalises `node` and
    /// transmits it to `dest` according to `mode`. Used by skeletons to
    /// feed process inputs from the parent ("inputs are evaluated in
    /// the parent").
    pub fn send_value_from(
        &mut self,
        from_pe: usize,
        dest: Endpoint,
        node: NodeRef,
        mode: CommMode,
    ) {
        let tid = self.fresh_tid();
        self.stats.threads_created += 1;
        let started = self.pes[from_pe].clock;
        let tso = match mode {
            CommMode::Single => EdenTso {
                machine: Machine::enter_deep(tid, node),
                job: Job::SendSingle { dest },
                started,
            },
            CommMode::Stream => EdenTso {
                machine: Machine::enter(tid, node),
                job: Job::SendStream {
                    dest,
                    phase: StreamPhase::Spine,
                },
                started,
            },
        };
        self.pes[from_pe].run_q.push_back(tso);
    }

    /// Start a native coordination thread on `pe`.
    pub fn start_native(&mut self, pe: usize, logic: Box<dyn NativeLogic>) {
        let tid = self.fresh_tid();
        self.stats.threads_created += 1;
        self.pes[pe]
            .natives_ready
            .push_back(NativeTso { tid, logic });
    }

    /// Run to completion: `entry` (a node on PE 0) is forced to WHNF
    /// by the main thread; the run ends when it finishes.
    pub fn run(&mut self, entry: NodeRef) -> Result<RunOutcome, String> {
        let main_tid = self.fresh_tid();
        self.stats.threads_created += 1;
        self.pes[0].pinned.push(entry);
        self.pes[0].run_q.push_back(EdenTso {
            machine: Machine::enter(main_tid, entry),
            job: Job::Main,
            started: 0,
        });
        loop {
            let Some((idx, ready)) = self
                .pes
                .iter()
                .enumerate()
                .filter_map(|(i, pe)| pe.ready_time().map(|t| (i, t)))
                .min_by_key(|(i, t)| (*t, *i))
            else {
                return Err(self.deadlock_report());
            };
            if let Some(result) = self.advance(idx, ready, main_tid)? {
                let elapsed = self.pes[0].clock;
                for i in 0..self.pes.len() {
                    self.pes[i].clock = self.pes[i].clock.max(elapsed);
                    self.set_state(i, State::Idle);
                }
                let tracer = std::mem::replace(&mut self.tracer, Tracer::disabled(0));
                return Ok(RunOutcome {
                    result,
                    elapsed,
                    stats: self.stats.clone(),
                    tracer,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Give `idx` a core and run it for up to one OS quantum.
    fn advance(
        &mut self,
        idx: usize,
        ready: Time,
        main_tid: ThreadId,
    ) -> Result<Option<NodeRef>, String> {
        let oversubscribed = self.pes.len() > self.cores.num_cores();
        let switch_cost = if oversubscribed {
            self.config.costs.os_ctx_switch
        } else {
            0
        };
        let (core, start) = self.cores.dispatch(idx as u32, ready, switch_cost);
        if self.pes[idx].clock < start {
            self.pes[idx].clock = start;
        }
        let quantum_end = self.pes[idx].clock + self.config.costs.os_quantum;

        let mut result = None;
        loop {
            self.deliver_due(idx);
            if self.pes[idx].current.is_none() {
                if let Some(mut tso) = self.pes[idx].run_q.pop_front() {
                    self.pes[idx].clock += self.config.costs.ctx_switch;
                    tso.started = self.pes[idx].clock;
                    self.pes[idx].current = Some(tso);
                } else if let Some(native) = self.pes[idx].natives_ready.pop_front() {
                    self.set_state(idx, State::Running);
                    self.step_native(idx, native)?;
                    continue;
                } else {
                    // Nothing runnable: blocked (threads waiting) or idle.
                    let st = if self.pes[idx].blocked.is_empty()
                        && self.pes[idx].natives_waiting.is_empty()
                    {
                        State::Idle
                    } else {
                        State::Blocked
                    };
                    self.set_state(idx, st);
                    break;
                }
            }
            self.set_state(idx, State::Running);
            let outcome = self.run_current_slice(idx, main_tid)?;
            if let Some(r) = outcome {
                result = Some(r);
                break;
            }
            if self.pes[idx].clock >= quantum_end && oversubscribed {
                // Quantum expired: yield the core with work remaining.
                if self.pes[idx].has_runnable() {
                    self.set_state(idx, State::Runnable);
                }
                break;
            }
        }
        let clock = self.pes[idx].clock;
        self.cores.occupy(core, clock);
        Ok(result)
    }

    /// Run the installed thread for one simulator slice.
    fn run_current_slice(
        &mut self,
        idx: usize,
        main_tid: ThreadId,
    ) -> Result<Option<NodeRef>, String> {
        let pe = &mut self.pes[idx];
        let mut tso = pe.current.take().expect("caller installed");
        let mut ctx = RunCtx::new(
            &self.program,
            &mut pe.heap,
            &mut pe.area,
            // Within a PE threads interleave on one core; eager
            // marking keeps intra-PE sharing race-free (GHC's lazy
            // black-holing achieves the same via the context-switch
            // scan; the distinction the paper studies is GpH-side).
            true,
        );
        let slice = tso.machine.run(&mut ctx, self.config.sim_slice);
        let woken = std::mem::take(&mut ctx.woken);
        drop(ctx);
        pe.clock += slice.cost;
        for tid in woken {
            if let Some(mut w) = self.pes[idx].blocked.remove(&tid) {
                w.machine.wake();
                self.pes[idx].run_q.push_back(w);
            }
        }
        match slice.stop {
            StopReason::FuelExhausted | StopReason::Sparked => {
                // `par` is a no-op hint under Eden (no spark pools).
                self.pes[idx].current = Some(tso);
            }
            StopReason::Checkpoint => {
                // Time-slice rotation (GHC -C): sender threads must
                // interleave for stream pipelining to work.
                let expired = self.pes[idx].clock - tso.started >= self.config.time_slice;
                if expired && !self.pes[idx].run_q.is_empty() {
                    self.pes[idx].clock += self.config.costs.ctx_switch;
                    self.pes[idx].run_q.push_back(tso);
                } else {
                    self.pes[idx].current = Some(tso);
                }
                self.maybe_local_gc(idx);
            }
            StopReason::Blocked(node) => {
                let tid = tso.machine.tid();
                self.stats.blackhole_blocks += 1;
                let now = self.pes[idx].clock;
                self.tracer.record(
                    CapId(idx as u32),
                    now,
                    EventKind::BlockedOnBlackHole { thread: tid },
                );
                self.pes[idx].heap.block_on(node, tid);
                self.pes[idx].blocked.insert(tid, tso);
                self.pes[idx].clock += self.config.costs.ctx_switch;
            }
            StopReason::Finished(r) => {
                return self.job_finished(idx, tso, r, main_tid);
            }
            StopReason::Error(e) => return Err(e),
        }
        Ok(None)
    }

    /// Handle a thread whose machine finished evaluating its target.
    fn job_finished(
        &mut self,
        idx: usize,
        mut tso: EdenTso,
        r: NodeRef,
        main_tid: ThreadId,
    ) -> Result<Option<NodeRef>, String> {
        match std::mem::replace(&mut tso.job, Job::Main) {
            Job::Main => {
                if tso.machine.tid() == main_tid {
                    return Ok(Some(r));
                }
                Ok(None)
            }
            Job::SendSingle { dest } => {
                let packet = packet::pack(&self.pes[idx].heap, r).map_err(|e| e.to_string())?;
                self.transmit(
                    idx,
                    dest.pe as usize,
                    Msg::Value {
                        chan: dest.chan,
                        packet,
                    },
                );
                Ok(None)
            }
            Job::SendStream { dest, phase } => {
                let tid = tso.machine.tid();
                match phase {
                    StreamPhase::Spine => {
                        let rr = self.pes[idx].heap.resolve(r);
                        match self.pes[idx].heap.whnf(rr).cloned() {
                            Some(rph_heap::Value::Cons(h, t)) => {
                                tso.job = Job::SendStream {
                                    dest,
                                    phase: StreamPhase::Head { tail: t },
                                };
                                tso.machine = Machine::enter_deep(tid, h);
                                // Stay installed: a sender drains every
                                // element already available within its
                                // time slice instead of re-queueing per
                                // item.
                                self.pes[idx].current = Some(tso);
                            }
                            Some(rph_heap::Value::Nil) => {
                                self.transmit(
                                    idx,
                                    dest.pe as usize,
                                    Msg::StreamEnd { chan: dest.chan },
                                );
                            }
                            other => {
                                return Err(format!(
                                    "stream sender expected a list, found {other:?}"
                                ))
                            }
                        }
                    }
                    StreamPhase::Head { tail } => {
                        let packet =
                            packet::pack(&self.pes[idx].heap, r).map_err(|e| e.to_string())?;
                        self.transmit(
                            idx,
                            dest.pe as usize,
                            Msg::StreamItem {
                                chan: dest.chan,
                                packet,
                            },
                        );
                        tso.job = Job::SendStream {
                            dest,
                            phase: StreamPhase::Spine,
                        };
                        tso.machine = Machine::enter(tid, tail);
                        self.pes[idx].current = Some(tso);
                    }
                }
                Ok(None)
            }
            Job::Native(_) => unreachable!("natives have no machine"),
        }
    }

    /// Run one native step.
    fn step_native(&mut self, idx: usize, mut native: NativeTso) -> Result<(), String> {
        let pe = &mut self.pes[idx];
        let mut ctx = NativeCtx {
            heap: &mut pe.heap,
            now: pe.clock,
            cost: 0,
            outgoing: Vec::new(),
            woken: Vec::new(),
        };
        let step = native.logic.step(&mut ctx)?;
        let NativeCtx {
            cost,
            outgoing,
            woken,
            ..
        } = ctx;
        self.pes[idx].clock += cost.max(1);
        self.wake_tsos(idx, woken);
        for (dest, msg) in outgoing {
            self.transmit(idx, dest.pe as usize, msg);
        }
        match step {
            NativeStep::Done => {}
            NativeStep::Wait(nodes) => {
                // If something is already available, stay ready.
                let ready = nodes.iter().any(|r| self.pes[idx].heap.whnf(*r).is_some());
                if ready {
                    self.pes[idx].natives_ready.push_back(native);
                } else {
                    self.pes[idx].natives_waiting.push((native, nodes));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Messaging
    // ------------------------------------------------------------------

    /// Charge the sender and enqueue delivery. All message pricing
    /// goes through the link-class API: packing is local CPU work on
    /// the sender's clock, then the message crosses the link the
    /// topology assigns to this PE pair — latency-only intra-node
    /// (exactly the pre-topology flat transport), latency plus a
    /// finite-bandwidth wire term inter-node.
    fn transmit(&mut self, from: usize, to: usize, msg: Msg) {
        let words = msg.words();
        let link = self.config.topology.link(from, to);
        self.stats.messages += 1;
        self.stats.message_words += words;
        if link == rph_sim::LinkClass::Inter {
            self.stats.remote_messages += 1;
            self.stats.remote_words += self.config.costs.link_words(link, words);
        }
        self.pes[from].clock += self.config.costs.msg_send_cost(words);
        let now = self.pes[from].clock;
        self.tracer.record(
            CapId(from as u32),
            now,
            EventKind::MsgSend {
                to: CapId(to as u32),
                words,
                tag: msg.tag(),
            },
        );
        // Clamp to the pair's last delivery: point-to-point FIFO (the
        // PVM guarantee). The event queue breaks equal-time ties in
        // insertion order, so send order is fully preserved.
        let fifo = &mut self.link_fifo[from * self.config.pes + to];
        let delivery = self.config.costs.msg_arrival(link, now, words).max(*fifo);
        *fifo = delivery;
        self.pes[to].inbox.push(delivery, msg);
    }

    /// Process all messages due at or before the PE's clock.
    fn deliver_due(&mut self, idx: usize) {
        loop {
            let now = self.pes[idx].clock;
            let Some((at, msg)) = self.pes[idx].inbox.pop_due(now) else {
                break;
            };
            debug_assert!(at <= now);
            let words = msg.words();
            self.pes[idx].clock += self.config.costs.msg_recv_cost(words);
            let t = self.pes[idx].clock;
            self.tracer.record(
                CapId(idx as u32),
                t,
                EventKind::MsgRecv {
                    from: CapId(u32::MAX),
                    words,
                    tag: msg.tag(),
                },
            );
            match msg {
                Msg::Spawn { f, inputs, outputs } => self.process_spawn(idx, f, inputs, outputs),
                Msg::Value { chan, packet } => {
                    let Some(ChanState::Single { placeholder }) = self.pes[idx].chans.remove(&chan)
                    else {
                        panic!("PE{idx}: Value for unknown/mis-moded channel {chan}");
                    };
                    let pe = &mut self.pes[idx];
                    let node = packet::unpack(&packet, &mut pe.heap);
                    let rep = pe.heap.update(placeholder, node);
                    self.wake_tsos(idx, rep.woken);
                    self.pes[idx].wake_natives();
                }
                Msg::StreamItem { chan, packet } => {
                    let Some(ChanState::Stream { tail }) = self.pes[idx].chans.get(&chan).copied()
                    else {
                        panic!("PE{idx}: StreamItem for unknown/mis-moded channel {chan}");
                    };
                    let pe = &mut self.pes[idx];
                    let elem = packet::unpack(&packet, &mut pe.heap);
                    let new_tail = pe.alloc_placeholder();
                    let cons = pe.heap.alloc_value(rph_heap::Value::Cons(elem, new_tail));
                    let rep = pe.heap.update(tail, cons);
                    pe.chans.insert(chan, ChanState::Stream { tail: new_tail });
                    self.wake_tsos(idx, rep.woken);
                    self.pes[idx].wake_natives();
                }
                Msg::StreamEnd { chan } => {
                    let Some(ChanState::Stream { tail }) = self.pes[idx].chans.remove(&chan) else {
                        panic!("PE{idx}: StreamEnd for unknown/mis-moded channel {chan}");
                    };
                    let pe = &mut self.pes[idx];
                    let nil = pe.heap.alloc_value(rph_heap::Value::Nil);
                    let rep = pe.heap.update(tail, nil);
                    self.wake_tsos(idx, rep.woken);
                    self.pes[idx].wake_natives();
                }
            }
        }
    }

    /// Set up a spawned process: input placeholders, the application
    /// thunk, and one sender thread per output component.
    fn process_spawn(
        &mut self,
        idx: usize,
        f: ScId,
        inputs: Vec<(ChanId, CommMode)>,
        outputs: Vec<(CommMode, Endpoint)>,
    ) {
        let mut input_nodes = Vec::with_capacity(inputs.len());
        for (chan, mode) in inputs {
            let placeholder = self.pes[idx].alloc_placeholder();
            let state = match mode {
                CommMode::Single => ChanState::Single { placeholder },
                CommMode::Stream => ChanState::Stream { tail: placeholder },
            };
            self.pes[idx].chans.insert(chan, state);
            input_nodes.push(placeholder);
        }
        let result = self.pes[idx].heap.alloc_thunk(f, input_nodes);
        let n_out = outputs.len();
        for (k, (mode, dest)) in outputs.into_iter().enumerate() {
            let target = if n_out == 1 {
                result
            } else {
                // Component sender: evaluates $sel_k_n(result).
                let sel = self.support.selector(n_out, k);
                self.pes[idx].heap.alloc_thunk(sel, vec![result])
            };
            self.pes[idx].clock += self.config.costs.thread_create;
            let tid = self.fresh_tid();
            self.stats.threads_created += 1;
            let started = self.pes[idx].clock;
            let tso = match mode {
                CommMode::Single => EdenTso {
                    machine: Machine::enter_deep(tid, target),
                    job: Job::SendSingle { dest },
                    started,
                },
                CommMode::Stream => EdenTso {
                    machine: Machine::enter(tid, target),
                    job: Job::SendStream {
                        dest,
                        phase: StreamPhase::Spine,
                    },
                    started,
                },
            };
            self.pes[idx].run_q.push_back(tso);
        }
    }

    fn wake_tsos(&mut self, idx: usize, tids: Vec<ThreadId>) {
        for tid in tids {
            if let Some(mut w) = self.pes[idx].blocked.remove(&tid) {
                w.machine.wake();
                self.pes[idx].run_q.push_back(w);
            }
        }
    }

    // ------------------------------------------------------------------
    // GC
    // ------------------------------------------------------------------

    /// Collect this PE's private heap if its allocation area is full —
    /// independently, with no cross-PE synchronisation (the
    /// distributed-heap model's headline property).
    fn maybe_local_gc(&mut self, idx: usize) {
        if !self.pes[idx].area.needs_gc() {
            return;
        }
        let t0 = self.pes[idx].clock;
        self.set_state(idx, State::Gc);
        let roots = self.pes[idx].collect_roots();
        let pe = &mut self.pes[idx];
        let res = pe.collector.collect(&mut pe.heap, roots);
        let copy_words = self.config.costs.gc_copy_words(
            pe.collector.stats().collections.saturating_sub(1),
            res.live_words,
            self.config.alloc_area_words,
        );
        let pause = self.config.costs.gc_pause_local(copy_words);
        pe.clock = t0 + pause;
        pe.area.reset_after_gc();
        self.stats.local_gcs += 1;
        self.stats.gc_time += pause;
        self.stats.collected_words += res.collected_words;
        let t = self.pes[idx].clock;
        self.tracer.record(
            CapId(idx as u32),
            t,
            EventKind::GcDone {
                live_words: res.live_words,
                collected_words: res.collected_words,
                pause,
            },
        );
        self.set_state(idx, State::Running);
    }

    // ------------------------------------------------------------------
    // Misc
    // ------------------------------------------------------------------

    fn set_state(&mut self, idx: usize, state: State) {
        if self.pes[idx].last_state != Some(state) {
            self.pes[idx].last_state = Some(state);
            let t = self.pes[idx].clock;
            self.tracer.state(CapId(idx as u32), t, state);
        }
    }

    fn fresh_tid(&mut self) -> ThreadId {
        let t = ThreadId(self.next_tid);
        self.next_tid += 1;
        t
    }

    fn deadlock_report(&self) -> String {
        let mut s = String::from("deadlock: no PE can make progress\n");
        for pe in &self.pes {
            s.push_str(&format!(
                "  PE{}: clock={} blocked={} waiting-natives={} chans={}\n",
                pe.id,
                pe.clock,
                pe.blocked.len(),
                pe.natives_waiting.len(),
                pe.chans.len()
            ));
        }
        s
    }
}
