//! End-to-end tests of the Eden runtime and its skeletons.

use crate::channel::{CommMode, Endpoint};
use crate::config::EdenConfig;
use crate::runtime::{EdenRuntime, ProcSpec};
use crate::skeletons::{self, list_of};
use crate::support::{install_support, EdenSupport};
use rph_heap::{NodeRef, ScId, Value};
use rph_machine::ir::*;
use rph_machine::prelude::{self, Prelude};
use rph_machine::program::{KernelOut, Program, ProgramBuilder};
use rph_machine::reference::read_int_list;
use std::sync::Arc;

struct Fix {
    program: Arc<Program>,
    support: EdenSupport,
    pre: Prelude,
    /// square x = x² (kernel, 50 µs, some churn)
    square: ScId,
    /// mapSquare ts = map square ts
    map_square: ScId,
    /// sumList xs = sum xs
    sum_list: ScId,
}

fn fix() -> Fix {
    let mut b = ProgramBuilder::new();
    let pre = prelude::install(&mut b);
    let support = install_support(&mut b);
    let square = b.kernel("square", 1, |heap, args| {
        let x = heap.expect_value(args[0]).expect_int();
        KernelOut {
            result: heap.alloc_value(Value::Int(x * x)),
            cost: 300_000,
            transient_words: 1_000,
        }
    });
    let map_square = b.def(
        "mapSquare",
        1,
        let_(vec![pap(square, vec![])], app(pre.map, vec![v(1), v(0)])),
    );
    let sum_list = b.def("sumList", 1, app(pre.sum, vec![v(0)]));
    Fix {
        program: b.build(),
        support,
        pre,
        square,
        map_square,
        sum_list,
    }
}

fn ints(rt: &mut EdenRuntime, xs: &[i64]) -> Vec<NodeRef> {
    xs.iter().map(|&x| rt.heap_mut(0).int(x)).collect()
}

#[test]
fn spawn_roundtrip_single_value() {
    let f = fix();
    let mut rt = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::new(2).without_trace(),
    );
    let (out_chan, out_node) = rt.new_channel(0, CommMode::Single);
    let in_chan = rt.fresh_chan();
    rt.spawn(
        1,
        ProcSpec {
            f: f.square,
            inputs: vec![(in_chan, CommMode::Single)],
            outputs: vec![(
                CommMode::Single,
                Endpoint {
                    pe: 0,
                    chan: out_chan,
                },
            )],
        },
    );
    let x = rt.heap_mut(0).int(7);
    rt.send_value_from(
        0,
        Endpoint {
            pe: 1,
            chan: in_chan,
        },
        x,
        CommMode::Single,
    );
    let out = rt.run(out_node).unwrap();
    assert_eq!(rt.heap(0).expect_value(out.result).expect_int(), 49);
    assert!(out.stats.processes == 1);
    assert!(out.stats.messages >= 3, "spawn + input + output");
    assert!(out.elapsed > 0);
}

#[test]
fn par_map_computes_in_order() {
    let f = fix();
    let mut rt = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::new(4).without_trace(),
    );
    let inputs = ints(&mut rt, &[1, 2, 3, 4, 5, 6, 7, 8]);
    let outs = skeletons::par_map(&mut rt, f.square, &inputs);
    // Consume: sum the output list via an IR thunk on PE 0.
    let list = list_of(rt.heap_mut(0), &outs);
    let entry = rt.heap_mut(0).alloc_thunk(f.pre.sum, vec![list]);
    let out = rt.run(entry).unwrap();
    let expect: i64 = (1..=8).map(|x| x * x).sum();
    assert_eq!(rt.heap(0).expect_value(out.result).expect_int(), expect);
    assert_eq!(out.stats.processes, 8);
}

#[test]
fn par_map_fold_sums_partials() {
    let f = fix();
    let mut rt = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::new(4).without_trace(),
    );
    let inputs = ints(&mut rt, &[3, 4, 5]);
    let entry = skeletons::par_map_fold(&mut rt, f.square, f.sum_list, &inputs);
    let out = rt.run(entry).unwrap();
    assert_eq!(
        rt.heap(0).expect_value(out.result).expect_int(),
        9 + 16 + 25
    );
}

#[test]
fn parallel_speedup_over_one_pe() {
    let f = fix();
    let work: Vec<i64> = (1..=16).collect();

    let mut rt1 = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::new(1).without_trace(),
    );
    let inputs = ints(&mut rt1, &work);
    let entry = skeletons::par_map_fold(&mut rt1, f.square, f.sum_list, &inputs);
    let o1 = rt1.run(entry).unwrap();

    let mut rt8 = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::new(8).without_trace(),
    );
    let inputs = ints(&mut rt8, &work);
    let entry = skeletons::par_map_fold(&mut rt8, f.square, f.sum_list, &inputs);
    let o8 = rt8.run(entry).unwrap();

    assert_eq!(
        rt1.heap(0).expect_value(o1.result).expect_int(),
        rt8.heap(0).expect_value(o8.result).expect_int()
    );
    let speedup = o1.elapsed as f64 / o8.elapsed as f64;
    assert!(speedup > 3.0, "8-PE speedup only {speedup:.2}");
}

#[test]
fn master_worker_dynamic_balancing() {
    let f = fix();
    let mut rt = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::new(4).without_trace(),
    );
    let tasks = ints(&mut rt, &(1..=20).collect::<Vec<_>>());
    let result = skeletons::master_worker(&mut rt, f.map_square, 3, 2, &tasks);
    // Force the whole result list: sum it.
    let entry = rt.heap_mut(0).alloc_thunk(f.pre.sum, vec![result]);
    let out = rt.run(entry).unwrap();
    let expect: i64 = (1..=20).map(|x| x * x).sum();
    assert_eq!(rt.heap(0).expect_value(out.result).expect_int(), expect);
    assert_eq!(out.stats.processes, 3);
}

#[test]
fn master_worker_single_worker_order_preserved() {
    let f = fix();
    let mut rt = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::new(2).without_trace(),
    );
    let tasks = ints(&mut rt, &[1, 2, 3, 4]);
    let result = skeletons::master_worker(&mut rt, f.map_square, 1, 1, &tasks);
    let entry = rt.heap_mut(0).alloc_thunk(f.pre.deep_seq, vec![result]);
    let out = rt.run(entry).unwrap();
    assert_eq!(read_int_list(rt.heap(0), out.result), vec![1, 4, 9, 16]);
}

/// Ring of 4: each node sends its input around; after n−1 hops every
/// node has seen every input. Output of node k = sum of all inputs.
#[test]
fn ring_circulates_all_inputs() {
    const N: i64 = 4;
    let mut b = ProgramBuilder::new();
    let pre = prelude::install(&mut b);
    let support = install_support(&mut b);
    // ringNode input ringIn =
    //   ( input + sum (take (N-1) ringIn)
    //   , input : take (N-2) ringIn )
    // frame: [input, ringIn]
    let ring_node = b.def(
        "ringNode",
        2,
        let_(
            vec![
                thunk(pre.take, vec![int(N - 2), v(1)]), // [2] fwd
                LetRhs::Cons(v(0), v(2)),                // [3] ringOut
                thunk(pre.take, vec![int(N - 1), v(1)]), // [4] recv
                thunk(pre.sum, vec![v(4)]),              // [5]
                thunk(pre.add, vec![v(0), v(5)]),        // [6] output
                LetRhs::Tuple(vec![v(6), v(3)]),         // [7]
            ],
            atom(v(7)),
        ),
    );
    let program = b.build();
    let mut rt = EdenRuntime::new(program, support, EdenConfig::new(4).without_trace());
    let inputs = ints(&mut rt, &[10, 20, 30, 40]);
    let outs = skeletons::ring(&mut rt, ring_node, &inputs);
    let pre_sum = rt.heap_mut(0);
    let list = list_of(pre_sum, &outs);
    let entry = pre_sum.alloc_thunk(pre.sum, vec![list]);
    let out = rt.run(entry).unwrap();
    // Each of the 4 outputs is 100, so the total is 400.
    assert_eq!(rt.heap(0).expect_value(out.result).expect_int(), 400);
}

/// 2×2 torus: each node's result = init + first row-in + first col-in;
/// each node emits its init on both its row and column streams.
#[test]
fn torus_neighbours_exchange() {
    let mut b = ProgramBuilder::new();
    let pre = prelude::install(&mut b);
    let support = install_support(&mut b);
    // torusNode init rowIn colIn =
    //   ( init + sum (take 1 rowIn) + sum (take 1 colIn)
    //   , [init], [init] )
    // frame: [init, rowIn, colIn]
    let torus_node = b.def(
        "torusNode",
        3,
        let_(
            vec![
                LetRhs::Nil,                            // [3]
                LetRhs::Cons(v(0), v(3)),               // [4] rowOut
                LetRhs::Cons(v(0), v(3)),               // [5] colOut
                thunk(pre.take, vec![int(1), v(1)]),    // [6]
                thunk(pre.take, vec![int(1), v(2)]),    // [7]
                thunk(pre.sum, vec![v(6)]),             // [8]
                thunk(pre.sum, vec![v(7)]),             // [9]
                thunk(pre.add, vec![v(0), v(8)]),       // [10]
                thunk(pre.add, vec![v(10), v(9)]),      // [11] result
                LetRhs::Tuple(vec![v(11), v(4), v(5)]), // [12]
            ],
            atom(v(12)),
        ),
    );
    let program = b.build();
    let mut rt = EdenRuntime::new(program, support, EdenConfig::new(4).without_trace());
    // inits row-major: (0,0)=1 (0,1)=2 (1,0)=3 (1,1)=4
    let inits = ints(&mut rt, &[1, 2, 3, 4]);
    let outs = skeletons::torus(&mut rt, torus_node, 2, &inits);
    let heap = rt.heap_mut(0);
    let list = list_of(heap, &outs);
    let entry = heap.alloc_thunk(pre.deep_seq, vec![list]);
    let out = rt.run(entry).unwrap();
    // rowIn of (i,j) comes from (i, j+1); colIn from (i+1, j).
    // (0,0): 1 + 2 + 3 = 6;  (0,1): 2 + 1 + 4 = 7
    // (1,0): 3 + 4 + 1 = 8;  (1,1): 4 + 3 + 2 = 9
    assert_eq!(read_int_list(rt.heap(0), out.result), vec![6, 7, 8, 9]);
}

#[test]
fn oversubscription_more_pes_than_cores_works() {
    let f = fix();
    let work: Vec<i64> = (1..=17).collect();
    let mut rt = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::oversubscribed(17, 8).without_trace(),
    );
    let inputs = ints(&mut rt, &work);
    let entry = skeletons::par_map_fold(&mut rt, f.square, f.sum_list, &inputs);
    let out = rt.run(entry).unwrap();
    let expect: i64 = work.iter().map(|x| x * x).sum();
    assert_eq!(rt.heap(0).expect_value(out.result).expect_int(), expect);
    assert_eq!(out.stats.processes, 17);
}

#[test]
fn determinism() {
    let f = fix();
    let run = || {
        let mut rt = EdenRuntime::new(
            f.program.clone(),
            f.support,
            EdenConfig::new(4).without_trace(),
        );
        let inputs = ints(&mut rt, &[1, 2, 3, 4, 5, 6]);
        let entry = skeletons::par_map_fold(&mut rt, f.square, f.sum_list, &inputs);
        let out = rt.run(entry).unwrap();
        (
            rt.heap(0).expect_value(out.result).expect_int(),
            out.elapsed,
            out.stats,
        )
    };
    let (v1, t1, s1) = run();
    let (v2, t2, s2) = run();
    assert_eq!(v1, v2);
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);
}

#[test]
fn local_gcs_happen_independently() {
    // Heavy transient allocation on workers forces local GCs; the run
    // still completes and collects real garbage.
    let mut b = ProgramBuilder::new();
    let pre = prelude::install(&mut b);
    let support = install_support(&mut b);
    let churn = b.kernel("churn", 1, |heap, args| {
        let x = heap.expect_value(args[0]).expect_int();
        KernelOut {
            result: heap.alloc_value(Value::Int(x)),
            cost: 100_000,
            transient_words: 200_000, // ~3 nursery loads
        }
    });
    let sum_list = b.def("sumL", 1, app(pre.sum, vec![v(0)]));
    let program = b.build();
    let mut rt = EdenRuntime::new(program, support, EdenConfig::new(4).without_trace());
    let inputs = ints(&mut rt, &(1..=8).collect::<Vec<_>>());
    let entry = skeletons::par_map_fold(&mut rt, churn, sum_list, &inputs);
    let out = rt.run(entry).unwrap();
    assert_eq!(rt.heap(0).expect_value(out.result).expect_int(), 36);
    assert!(out.stats.local_gcs > 0, "expected local collections");
}

#[test]
fn deadlock_is_reported_not_hung() {
    let f = fix();
    let mut rt = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::new(2).without_trace(),
    );
    // A channel nobody ever sends to: main blocks forever.
    let (_chan, node) = rt.new_channel(0, CommMode::Single);
    let err = rt.run(node).unwrap_err();
    assert!(err.contains("deadlock"), "got: {err}");
}

#[test]
fn trace_records_messages_and_states() {
    let f = fix();
    let mut rt = EdenRuntime::new(f.program.clone(), f.support, EdenConfig::new(2));
    let inputs = ints(&mut rt, &[5]);
    let entry = skeletons::par_map_fold(&mut rt, f.square, f.sum_list, &inputs);
    let out = rt.run(entry).unwrap();
    let tl = rph_trace::Timeline::from_tracer(&out.tracer);
    tl.check_well_formed().unwrap();
    let counters = rph_trace::Counters::from_tracer(&out.tracer);
    assert!(counters.messages_sent >= 3);
    assert_eq!(counters.processes_instantiated, 1);
}

#[test]
fn par_reduce_folds_remotely() {
    // parReduce (+) 0 over pre-split sublists.
    let mut b = ProgramBuilder::new();
    let pre = prelude::install(&mut b);
    let support = install_support(&mut b);
    let sum_list = b.def("sumL", 1, app(pre.sum, vec![v(0)]));
    let program = b.build();
    let mut rt = EdenRuntime::new(program, support, EdenConfig::new(3).without_trace());
    let sublists: Vec<NodeRef> = [
        (1..=10).collect::<Vec<i64>>(),
        (11..=20).collect(),
        (21..=30).collect(),
    ]
    .iter()
    .map(|xs| {
        let heap = rt.heap_mut(0);
        rph_machine::reference::alloc_int_list(heap, xs)
    })
    .collect();
    let entry = skeletons::par_reduce(&mut rt, sum_list, sum_list, &sublists);
    let out = rt.run(entry).unwrap();
    assert_eq!(
        rt.heap(0).expect_value(out.result).expect_int(),
        (1..=30).sum::<i64>()
    );
    assert_eq!(out.stats.processes, 3);
}

/// The single-node topology is the pre-topology runtime by
/// construction: an explicit `with_topology(1, pes)` replays the
/// default config bit for bit — value, virtual makespan, counters and
/// merged trace — and records zero inter-node traffic.
#[test]
fn single_node_topology_is_bit_identical_to_default() {
    let f = fix();
    let run = |cfg: EdenConfig| {
        let mut rt = EdenRuntime::new(f.program.clone(), f.support, cfg);
        let inputs = ints(&mut rt, &[1, 2, 3, 4, 5, 6]);
        let entry = skeletons::par_map_fold(&mut rt, f.square, f.sum_list, &inputs);
        let out = rt.run(entry).unwrap();
        (
            rt.heap(0).expect_value(out.result).expect_int(),
            out.elapsed,
            out.stats,
            out.tracer.merged(),
        )
    };
    let base = run(EdenConfig::new(4));
    let topo = run(EdenConfig::new(4).with_topology(1, 4));
    assert_eq!(base, topo);
    assert_eq!(base.2.remote_messages, 0);
    assert_eq!(base.2.remote_words, 0);
}

/// A two-node cluster reprices the farm's channel traffic: the value
/// is unchanged, cross-node packets land in the remote counters with
/// their per-message envelope, and the inter-node latency lengthens
/// the makespan.
#[test]
fn cluster_topology_prices_inter_node_messages() {
    let f = fix();
    let run = |cfg: EdenConfig| {
        let mut rt = EdenRuntime::new(f.program.clone(), f.support, cfg.without_trace());
        let inputs = ints(&mut rt, &[1, 2, 3, 4, 5, 6]);
        let entry = skeletons::par_map_fold(&mut rt, f.square, f.sum_list, &inputs);
        let out = rt.run(entry).unwrap();
        (
            rt.heap(0).expect_value(out.result).expect_int(),
            out.elapsed,
            out.stats,
        )
    };
    let flat = run(EdenConfig::new(4));
    let clus = run(EdenConfig::new(4).with_topology(2, 2));
    assert_eq!(flat.0, clus.0);
    assert!(clus.2.remote_messages > 0, "{:?}", clus.2);
    assert!(clus.2.remote_messages < clus.2.messages, "{:?}", clus.2);
    // Every remote message carries its payload plus the envelope.
    assert!(clus.2.remote_words > clus.2.remote_messages, "{:?}", clus.2);
    assert!(
        clus.1 > flat.1,
        "inter-node links must lengthen the makespan: {} !> {}",
        clus.1,
        flat.1
    );
}

/// Message transport is FIFO per PE pair (the PVM guarantee). On an
/// inter-node link the bandwidth term would otherwise let a tiny
/// stream element — or the end-of-stream marker — overtake a large
/// element sent just before it, corrupting the stream channel.
#[test]
fn inter_node_streams_preserve_send_order() {
    let f = fix();
    let mut rt = EdenRuntime::new(
        f.program.clone(),
        f.support,
        EdenConfig::new(2).with_topology(2, 1).without_trace(),
    );
    let (chan, stream) = rt.new_channel(0, CommMode::Stream);
    let heap = rt.heap_mut(1);
    let big: Vec<NodeRef> = (0..2_000).map(|i| heap.int(i)).collect();
    let big_list = list_of(heap, &big);
    let seven = heap.int(7);
    let small_list = list_of(heap, &[seven]);
    let elems = list_of(heap, &[big_list, small_list]);
    rt.send_value_from(1, Endpoint { pe: 0, chan }, elems, CommMode::Stream);
    // Force the whole stream: sum (map sumList stream).
    let heap = rt.heap_mut(0);
    let summer = heap.alloc_value(Value::Pap {
        sc: f.sum_list,
        args: Box::new([]),
    });
    let mapped = heap.alloc_thunk(f.pre.map, vec![summer, stream]);
    let entry = heap.alloc_thunk(f.pre.sum, vec![mapped]);
    let out = rt.run(entry).unwrap();
    assert_eq!(
        rt.heap(0).expect_value(out.result).expect_int(),
        (0..2_000).sum::<i64>() + 7
    );
    // The first element must still be the large one.
    let heap = rt.heap(0);
    let Value::Cons(first, _) = heap.expect_value(stream) else {
        panic!("stream did not materialise");
    };
    assert_eq!(read_int_list(heap, *first).len(), 2_000);
}
