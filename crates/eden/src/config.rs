//! Eden runtime configuration.

use rph_heap::AllocArea;
use rph_sim::{Costs, Topology};

/// Configuration of an Eden run.
#[derive(Debug, Clone)]
pub struct EdenConfig {
    /// Number of virtual PEs (PVM "virtual machines"). May exceed
    /// `cores` — the paper's Fig. 4 d/e run 9 and 17 PEs on 8 cores.
    pub pes: usize,
    /// Number of physical cores the OS schedules PEs onto.
    pub cores: usize,
    /// Per-PE allocation area in words. Same GHC default as the
    /// shared-heap runtime; each PE collects independently.
    pub alloc_area_words: u64,
    /// Allocation checkpoint quantum in words.
    pub checkpoint_words: u64,
    /// Overhead cost model (message latency, GC, OS quanta, …).
    pub costs: Costs,
    /// Machine shape: which node each PE lives on. Defaults to one
    /// shared-memory node holding all PEs — the paper's flat PVM
    /// transport, bit-identical to the pre-topology runtime. Under a
    /// multi-node cluster, messages between PEs on different nodes pay
    /// inter-node latency and bandwidth ([`rph_sim::LinkClass`]).
    pub topology: Topology,
    /// Simulator slice bound (virtual time a PE advances per
    /// dispatch; also the OS-quantum granularity interacts with this).
    pub sim_slice: u64,
    /// Thread time slice within a PE (GHC `-C`): how long one thread
    /// (e.g. a process-output sender) may run before the scheduler
    /// rotates to the next runnable thread. Stream pipelining depends
    /// on senders interleaving at this granularity.
    pub time_slice: u64,
    /// RNG seed.
    pub seed: u64,
    /// Record a full event trace.
    pub trace: bool,
}

impl EdenConfig {
    /// `pes` virtual PEs on the same number of cores — the standard
    /// configuration (Fig. 1's "8 PEs running under PVM").
    pub fn new(pes: usize) -> Self {
        EdenConfig {
            pes,
            cores: pes,
            alloc_area_words: AllocArea::DEFAULT_AREA_WORDS,
            checkpoint_words: AllocArea::DEFAULT_CHECKPOINT_WORDS,
            costs: Costs::default(),
            topology: Topology::single_node(pes),
            sim_slice: 100_000,
            time_slice: 10_000,
            seed: 0x9E37,
            trace: true,
        }
    }

    /// Oversubscribed: `pes` virtual PEs time-sliced onto `cores`
    /// cores (Fig. 4 d/e).
    pub fn oversubscribed(pes: usize, cores: usize) -> Self {
        let mut c = Self::new(pes);
        c.cores = cores;
        c
    }

    /// Model a cluster of `nodes` shared-memory nodes with
    /// `pes_per_node` PEs each (must multiply out to [`Self::pes`]).
    /// PE `i` lives on node `i / pes_per_node`.
    pub fn with_topology(mut self, nodes: usize, pes_per_node: usize) -> Self {
        assert_eq!(
            nodes * pes_per_node,
            self.pes,
            "topology must cover exactly the configured PEs"
        );
        self.topology = Topology::cluster(nodes, pes_per_node);
        self
    }

    pub fn without_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = EdenConfig::new(8);
        assert_eq!((c.pes, c.cores), (8, 8));
        let o = EdenConfig::oversubscribed(17, 8)
            .without_trace()
            .with_seed(3);
        assert_eq!((o.pes, o.cores), (17, 8));
        assert!(!o.trace);
        assert_eq!(o.seed, 3);
    }
}
