//! # rph-eden — the distributed-heap Eden runtime
//!
//! The simulated counterpart of the Eden implementation the paper runs
//! on multicore machines (§III.B): every *processing element* (PE) is a
//! complete sequential runtime with its **own private heap and its own
//! independent garbage collector**; PEs are connected by a
//! message-passing middleware (the paper uses PVM mapped onto shared
//! memory), and may be more numerous than the physical cores (the
//! OS time-slices them — Fig. 4 runs 9 and 17 virtual PEs on 8 cores).
//!
//! Eden semantics implemented here (§II.A):
//!
//! * **Processes** are instantiated eagerly on remote PEs and
//!   communicate *fully evaluated* data through channels — all values
//!   are reduced to normal form before sending.
//! * **Top-level lists are streams**: sent element by element.
//! * **Tuple components** are evaluated and sent by independent
//!   concurrent sender threads, each on its own channel.
//! * Inputs to a process are evaluated *in the parent* by concurrent
//!   sender threads.
//! * Receivers allocate **placeholders** in their heap "which will be
//!   replaced by arriving message data" — here literally black holes
//!   that message delivery updates, waking blocked threads.
//!
//! The skeleton layer ([`skeletons`]) provides the paper's `parMap`,
//! `parMapReduce`, `parReduce`, `masterWorker`, `ring` and `torus`
//! (Cannon) skeletons on top of the raw process/channel API, mirroring
//! how Eden's skeleton library is "implemented as a Haskell module on
//! top of these more basic primitives".
//!
//! # Example
//!
//! `parMap` of a kernel over eight inputs on four PEs:
//!
//! ```
//! use rph_eden::{EdenConfig, EdenRuntime, install_support, skeletons};
//! use rph_machine::{prelude, ProgramBuilder, KernelOut};
//! use rph_machine::ir::*;
//! use rph_heap::{NodeRef, Value};
//!
//! let mut b = ProgramBuilder::new();
//! let pre = prelude::install(&mut b);
//! let support = install_support(&mut b);
//! let work = b.kernel("work", 1, |heap, args| {
//!     let x = heap.expect_value(args[0]).expect_int();
//!     KernelOut { result: heap.alloc_value(Value::Int(x + 1)),
//!                 cost: 50_000, transient_words: 100 }
//! });
//! let program = b.build();
//!
//! let mut rt = EdenRuntime::new(program, support, EdenConfig::new(4));
//! let inputs: Vec<NodeRef> = (1..=8).map(|x| rt.heap_mut(0).int(x)).collect();
//! let outs = skeletons::par_map(&mut rt, work, &inputs);
//! let list = skeletons::list_of(rt.heap_mut(0), &outs);
//! let entry = rt.heap_mut(0).alloc_thunk(pre.sum, vec![list]);
//! let out = rt.run(entry).unwrap();
//! assert_eq!(rt.heap(0).expect_value(out.result).expect_int(),
//!            (1..=8).map(|x| x + 1).sum::<i64>());
//! assert_eq!(out.stats.processes, 8);
//! ```

pub mod channel;
pub mod config;
#[cfg(test)]
mod eden_tests;
pub mod job;
pub mod packet;
pub mod pe;
pub mod runtime;
pub mod skeletons;
pub mod support;

pub use channel::{ChanId, CommMode, Endpoint};
pub use config::EdenConfig;
pub use packet::Packet;
pub use runtime::{EdenRuntime, EdenStats, ProcSpec, RunOutcome};
pub use support::{install_support, EdenSupport};
