//! Thread jobs: what a PE thread does with the values it evaluates.
//!
//! Eden processes communicate through dedicated *sender threads*: one
//! per output channel (one per tuple component), plus sender threads in
//! the parent for process inputs. A sender normalises its value and
//! transmits it according to the channel's [`CommMode`]; stream senders
//! alternate between forcing the next spine cell and deep-forcing the
//! element to send.

use crate::channel::{ChanId, Endpoint};
use crate::packet::Packet;
use rph_heap::{Heap, NodeRef};
use rph_trace::Time;

/// A message on the wire.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Instantiate a process (delivered to the target PE).
    Spawn {
        f: rph_heap::ScId,
        inputs: Vec<(ChanId, crate::channel::CommMode)>,
        outputs: Vec<(crate::channel::CommMode, Endpoint)>,
    },
    /// A complete single value for a channel.
    Value { chan: ChanId, packet: Packet },
    /// One stream element.
    StreamItem { chan: ChanId, packet: Packet },
    /// End of stream.
    StreamEnd { chan: ChanId },
}

impl Msg {
    /// Payload size in words (headers are charged via latency).
    pub fn words(&self) -> u64 {
        match self {
            Msg::Value { packet, .. } | Msg::StreamItem { packet, .. } => packet.words(),
            Msg::Spawn { .. } | Msg::StreamEnd { .. } => 0,
        }
    }

    /// Short tag for tracing.
    pub fn tag(&self) -> &'static str {
        match self {
            Msg::Spawn { .. } => "spawn",
            Msg::Value { .. } => "value",
            Msg::StreamItem { .. } => "stream-item",
            Msg::StreamEnd { .. } => "stream-end",
        }
    }
}

/// Phase of a stream sender.
#[derive(Debug, Clone, Copy)]
pub enum StreamPhase {
    /// Forcing the next spine cell to WHNF (is it `Cons` or `Nil`?).
    Spine,
    /// Deep-forcing the current head; `tail` is the rest of the spine.
    Head { tail: NodeRef },
}

/// What a thread is for.
pub enum Job {
    /// The program's main thread (PE 0); its result ends the run.
    Main,
    /// Normalise the machine's target and send it in one message.
    SendSingle { dest: Endpoint },
    /// Send the machine's target as a stream, element by element.
    SendStream { dest: Endpoint, phase: StreamPhase },
    /// Native coordination logic (e.g. the master of `masterWorker`);
    /// has no abstract machine — it reacts to channel data directly.
    Native(Box<dyn NativeLogic>),
}

impl Job {
    /// Roots held by the job itself (beyond the machine's).
    pub fn push_roots(&self, out: &mut Vec<NodeRef>) {
        match self {
            Job::SendStream {
                phase: StreamPhase::Head { tail },
                ..
            } => out.push(*tail),
            Job::Native(n) => n.push_roots(out),
            _ => {}
        }
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Job::Main => write!(f, "Main"),
            Job::SendSingle { dest } => write!(f, "SendSingle({}→{})", dest.pe, dest.chan),
            Job::SendStream { dest, phase } => {
                write!(f, "SendStream({}→{}, {phase:?})", dest.pe, dest.chan)
            }
            Job::Native(_) => write!(f, "Native"),
        }
    }
}

/// Outcome of a native step.
pub enum NativeStep {
    /// Re-run this native once any of these nodes is in WHNF (message
    /// deliveries update placeholders, making them WHNF).
    Wait(Vec<NodeRef>),
    /// The native is finished.
    Done,
}

/// Context handed to native logic: heap access plus outgoing sends.
pub struct NativeCtx<'a> {
    pub heap: &'a mut Heap,
    pub now: Time,
    /// Work units to charge for this step (natives add their own
    /// processing cost here).
    pub cost: u64,
    /// Messages to transmit after the step (the runtime charges send
    /// costs and latency).
    pub outgoing: Vec<(Endpoint, Msg)>,
    /// Threads unblocked by heap updates the native performed (e.g.
    /// filling a result placeholder); the runtime requeues them.
    pub woken: Vec<rph_trace::ThreadId>,
}

impl<'a> NativeCtx<'a> {
    /// Pack `node` (must be in normal form) and queue it as a single
    /// value to `dest`.
    pub fn send_single(&mut self, dest: Endpoint, node: NodeRef) -> Result<(), String> {
        let packet = crate::packet::pack(self.heap, node).map_err(|e| e.to_string())?;
        self.outgoing.push((
            dest,
            Msg::Value {
                chan: dest.chan,
                packet,
            },
        ));
        Ok(())
    }

    /// Pack `node` and queue it as one stream element to `dest`.
    pub fn send_stream_item(&mut self, dest: Endpoint, node: NodeRef) -> Result<(), String> {
        let packet = crate::packet::pack(self.heap, node).map_err(|e| e.to_string())?;
        self.outgoing.push((
            dest,
            Msg::StreamItem {
                chan: dest.chan,
                packet,
            },
        ));
        Ok(())
    }

    /// Queue end-of-stream to `dest`.
    pub fn send_stream_end(&mut self, dest: Endpoint) {
        self.outgoing
            .push((dest, Msg::StreamEnd { chan: dest.chan }));
    }
}

/// Coordination logic that runs natively on a PE (the counterpart of
/// Eden's IO-monadic "more basic internals \[providing\] more explicit
/// control", §II.A.1). Used by the `masterWorker` skeleton's master.
pub trait NativeLogic: Send {
    /// Called when first scheduled and again whenever a node from the
    /// last [`NativeStep::Wait`] set has become WHNF.
    fn step(&mut self, ctx: &mut NativeCtx<'_>) -> Result<NativeStep, String>;

    /// GC roots this logic holds.
    fn push_roots(&self, out: &mut Vec<NodeRef>);
}
