//! Serialised normal-form subgraphs: the payload of Eden messages.
//!
//! A [`Packet`] is a heap-independent representation of a normal-form
//! value graph ("computation subgraph structures, serialised into one
//! or more packets", §III.B). Packing flattens the subgraph with
//! sharing preserved; unpacking allocates it into the receiving PE's
//! private heap. Supercombinator ids travel verbatim — the program
//! table is replicated on every PE, exactly like the compiled code
//! segment of a real Eden binary.

use rph_heap::{Cell, Heap, HeapError, NodeRef, ScId, Value};
use std::collections::HashMap;

/// One serialised cell. Indices refer to [`Packet::cells`].
#[derive(Debug, Clone, PartialEq)]
pub enum PCell {
    Int(i64),
    Double(f64),
    Bool(bool),
    Unit,
    Nil,
    Cons(u32, u32),
    Tuple(Box<[u32]>),
    DArray(Box<[f64]>),
    Pap { sc: ScId, args: Box<[u32]> },
}

/// A serialised normal-form subgraph.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Cells in an order where children precede parents (packing is a
    /// post-order traversal), so unpacking is a single forward pass.
    cells: Vec<PCell>,
    /// Index of the root cell.
    root: u32,
    /// Serialised size in heap words (drives transmission cost).
    words: u64,
}

impl Packet {
    /// Serialised size in words.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Number of distinct cells (sharing collapses duplicates).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True for a packet with no cells (never produced by `pack`).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Serialise the normal-form subgraph rooted at `root`.
///
/// Fails with [`HeapError::NotNormalForm`] if any reachable cell is an
/// unevaluated thunk or a black hole — the sender must normalise first.
pub fn pack(heap: &Heap, root: NodeRef) -> Result<Packet, HeapError> {
    let mut cells = Vec::new();
    let mut memo: HashMap<NodeRef, u32> = HashMap::new();
    let mut words = 0u64;
    let root_idx = pack_rec(heap, heap.resolve(root), &mut cells, &mut memo, &mut words)?;
    Ok(Packet {
        cells,
        root: root_idx,
        words,
    })
}

fn pack_rec(
    heap: &Heap,
    r: NodeRef,
    cells: &mut Vec<PCell>,
    memo: &mut HashMap<NodeRef, u32>,
    words: &mut u64,
) -> Result<u32, HeapError> {
    let r = heap.resolve(r);
    if let Some(&idx) = memo.get(&r) {
        return Ok(idx);
    }
    let value = match heap.get(r) {
        Cell::Value(v) => v,
        Cell::Thunk { .. } | Cell::BlackHole { .. } => return Err(HeapError::NotNormalForm(r)),
        Cell::Free => return Err(HeapError::UseAfterFree(r)),
        Cell::Ind(_) => unreachable!("resolved"),
    };
    *words += value.words();
    let pcell = match value {
        Value::Int(i) => PCell::Int(*i),
        Value::Double(d) => PCell::Double(*d),
        Value::Bool(b) => PCell::Bool(*b),
        Value::Unit => PCell::Unit,
        Value::Nil => PCell::Nil,
        Value::DArray(xs) => PCell::DArray(xs.clone()),
        Value::Cons(h, t) => {
            // Iterative over the spine to keep Rust stack depth O(1)
            // in list length: collect the spine first.
            let (h, t) = (*h, *t);
            let mut spine = vec![(r, h)];
            let mut tail = t;
            let tail_idx = loop {
                let tr = heap.resolve(tail);
                if let Some(&idx) = memo.get(&tr) {
                    break idx;
                }
                match heap.get(tr) {
                    Cell::Value(Value::Cons(h2, t2)) => {
                        spine.push((tr, *h2));
                        tail = *t2;
                    }
                    Cell::Value(_) => break pack_rec(heap, tr, cells, memo, words)?,
                    Cell::Thunk { .. } | Cell::BlackHole { .. } => {
                        return Err(HeapError::NotNormalForm(tr))
                    }
                    Cell::Free => return Err(HeapError::UseAfterFree(tr)),
                    Cell::Ind(_) => unreachable!(),
                }
            };
            let mut tail_idx = tail_idx;
            // Count the extra spine cells' words (the first cons was
            // already counted above).
            *words += 3 * (spine.len() as u64 - 1);
            while let Some((node, head)) = spine.pop() {
                let h_idx = pack_rec(heap, head, cells, memo, words)?;
                cells.push(PCell::Cons(h_idx, tail_idx));
                let idx = (cells.len() - 1) as u32;
                memo.insert(node, idx);
                tail_idx = idx;
            }
            return Ok(tail_idx);
        }
        Value::Tuple(fields) => {
            let idxs: Box<[u32]> = fields
                .iter()
                .map(|f| pack_rec(heap, *f, cells, memo, words))
                .collect::<Result<_, _>>()?;
            PCell::Tuple(idxs)
        }
        Value::Pap { sc, args } => {
            let idxs: Box<[u32]> = args
                .iter()
                .map(|a| pack_rec(heap, *a, cells, memo, words))
                .collect::<Result<_, _>>()?;
            PCell::Pap {
                sc: *sc,
                args: idxs,
            }
        }
    };
    cells.push(pcell);
    let idx = (cells.len() - 1) as u32;
    memo.insert(r, idx);
    Ok(idx)
}

/// Allocate the packet's subgraph into `heap`, returning the root.
pub fn unpack(packet: &Packet, heap: &mut Heap) -> NodeRef {
    let mut nodes: Vec<NodeRef> = Vec::with_capacity(packet.cells.len());
    for cell in &packet.cells {
        let v = match cell {
            PCell::Int(i) => Value::Int(*i),
            PCell::Double(d) => Value::Double(*d),
            PCell::Bool(b) => Value::Bool(*b),
            PCell::Unit => Value::Unit,
            PCell::Nil => Value::Nil,
            PCell::DArray(xs) => Value::DArray(xs.clone()),
            PCell::Cons(h, t) => Value::Cons(nodes[*h as usize], nodes[*t as usize]),
            PCell::Tuple(fs) => Value::Tuple(fs.iter().map(|f| nodes[*f as usize]).collect()),
            PCell::Pap { sc, args } => Value::Pap {
                sc: *sc,
                args: args.iter().map(|a| nodes[*a as usize]).collect(),
            },
        };
        nodes.push(heap.alloc_value(v));
    }
    nodes[packet.root as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rph_machine::reference::{alloc_int_list, read_int_list};

    #[test]
    fn roundtrip_list() {
        let mut src = Heap::new();
        let xs = alloc_int_list(&mut src, &[1, 2, 3, 4]);
        let p = pack(&src, xs).unwrap();
        let mut dst = Heap::new();
        let r = unpack(&p, &mut dst);
        assert_eq!(read_int_list(&dst, r), vec![1, 2, 3, 4]);
        // 4 cons (3w) + 4 ints (2w) + nil (2w) = 22 words.
        assert_eq!(p.words(), 22);
    }

    #[test]
    fn roundtrip_long_list_no_stack_overflow() {
        let mut src = Heap::new();
        let data: Vec<i64> = (0..50_000).collect();
        let xs = alloc_int_list(&mut src, &data);
        let p = pack(&src, xs).unwrap();
        let mut dst = Heap::new();
        let r = unpack(&p, &mut dst);
        assert_eq!(read_int_list(&dst, r), data);
    }

    #[test]
    fn sharing_preserved_and_counted_once() {
        let mut src = Heap::new();
        let arr = src.alloc_value(Value::DArray(vec![7.0; 50].into()));
        let t = src.alloc_value(Value::Tuple(vec![arr, arr].into()));
        let p = pack(&src, t).unwrap();
        assert_eq!(p.len(), 2, "array packed once");
        assert_eq!(p.words(), 3 + 52);
        let mut dst = Heap::new();
        let r = unpack(&p, &mut dst);
        match dst.expect_value(r) {
            Value::Tuple(fs) => assert_eq!(fs[0], fs[1], "sharing survives"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn thunks_rejected() {
        let mut src = Heap::new();
        let t = src.alloc_thunk(ScId(0), vec![]);
        let nil = src.alloc_value(Value::Nil);
        let cons = src.alloc_value(Value::Cons(t, nil));
        assert!(matches!(pack(&src, cons), Err(HeapError::NotNormalForm(_))));
    }

    #[test]
    fn pap_crosses_heaps() {
        let mut src = Heap::new();
        let x = src.int(5);
        let f = src.alloc_value(Value::Pap {
            sc: ScId(3),
            args: vec![x].into(),
        });
        let p = pack(&src, f).unwrap();
        let mut dst = Heap::new();
        let r = unpack(&p, &mut dst);
        match dst.expect_value(r) {
            Value::Pap { sc, args } => {
                assert_eq!(*sc, ScId(3));
                assert_eq!(dst.expect_value(args[0]).expect_int(), 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn indirections_resolved() {
        let mut src = Heap::new();
        let v = src.int(9);
        let t = src.alloc_thunk(ScId(0), vec![]);
        src.claim_thunk(t, true);
        src.update(t, v);
        let p = pack(&src, t).unwrap();
        let mut dst = Heap::new();
        let r = unpack(&p, &mut dst);
        assert_eq!(dst.expect_value(r).expect_int(), 9);
    }
}
