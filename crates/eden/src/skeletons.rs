//! Algorithmic and topology skeletons (§II.A of the paper).
//!
//! Each skeleton is a coordination pattern built on the raw
//! process/channel API, exactly as Eden's skeleton library is "a
//! Haskell module on top of these more basic primitives". Worker
//! functions are supercombinators of the program being run; the
//! skeleton spawns processes, wires channels (including child-to-child
//! channels for the `ring` and `torus` topologies) and returns the
//! node(s) on PE 0 through which the parent consumes the results.

use crate::channel::{ChanId, CommMode, Endpoint};
use crate::job::{NativeCtx, NativeLogic, NativeStep};
use crate::runtime::{EdenRuntime, ProcSpec};
use rph_heap::{Heap, NodeRef, ScId, Value};

/// Round-robin placement, starting next to the parent (Eden's default
/// `instantiateAt 0`): process `k` runs on PE `(k + 1) mod pes`.
pub fn place(k: usize, pes: usize) -> usize {
    (k + 1) % pes
}

/// Build a cons list from already-allocated nodes.
pub fn list_of(heap: &mut Heap, nodes: &[NodeRef]) -> NodeRef {
    let mut tail = heap.alloc_value(Value::Nil);
    for &n in nodes.iter().rev() {
        tail = heap.alloc_value(Value::Cons(n, tail));
    }
    tail
}

/// `parMap f xs`: one process per input, results as placeholders on
/// PE 0 in input order. `f` has arity 1; inputs and outputs travel as
/// single (normal-form) messages.
pub fn par_map(rt: &mut EdenRuntime, f: ScId, inputs: &[NodeRef]) -> Vec<NodeRef> {
    let pes = rt.num_pes();
    let mut outs = Vec::with_capacity(inputs.len());
    for (k, &x) in inputs.iter().enumerate() {
        let target = place(k, pes);
        let (out_chan, out_node) = rt.new_channel(0, CommMode::Single);
        let in_chan = rt.fresh_chan();
        rt.spawn(
            target,
            ProcSpec {
                f,
                inputs: vec![(in_chan, CommMode::Single)],
                outputs: vec![(
                    CommMode::Single,
                    Endpoint {
                        pe: 0,
                        chan: out_chan,
                    },
                )],
            },
        );
        rt.send_value_from(
            0,
            Endpoint {
                pe: target as u32,
                chan: in_chan,
            },
            x,
            CommMode::Single,
        );
        outs.push(out_node);
    }
    outs
}

/// `parMap` + a parent-side combine: returns `combine [f x | x <- xs]`
/// as a node on PE 0 (`combine` has arity 1 and takes the list of
/// per-process results). This is the shape of `parReduce`:
/// `parReduce f z xs = foldl' f z (parMap (foldl' f z) (splitIntoN n xs))`.
pub fn par_map_fold(rt: &mut EdenRuntime, f: ScId, combine: ScId, inputs: &[NodeRef]) -> NodeRef {
    let outs = par_map(rt, f, inputs);
    let heap = rt.heap_mut(0);
    let list = list_of(heap, &outs);
    heap.alloc_thunk(combine, vec![list])
}

/// `parMapReduce` (§II.A): mapper processes turn each input chunk into
/// key–value pairs and pre-reduce locally (the MapReduce "combiner");
/// the parent merges the per-process partials with `merge` (arity 1,
/// taking the list of partial results). Returns the merged node on
/// PE 0.
pub fn par_map_reduce(
    rt: &mut EdenRuntime,
    mapper: ScId,
    merge: ScId,
    chunks: &[NodeRef],
) -> NodeRef {
    par_map_fold(rt, mapper, merge, chunks)
}

/// `masterWorker f prefetch tasks`: a master on PE 0 feeds a dynamic
/// bag of tasks to `n_workers` worker processes over task streams,
/// sending a new task whenever a result comes back (with `prefetch`
/// tasks in flight per worker initially). Results arrive in completion
/// order. `worker_map` has arity 1 and must map `f` over its task
/// stream lazily (e.g. `\ts -> map f ts`), so one task is processed per
/// arriving stream element.
///
/// Task nodes must already be in normal form (they are packed directly
/// by the master).
///
/// Returns the placeholder on PE 0 that the master fills with the list
/// of results when every worker is done.
pub fn master_worker(
    rt: &mut EdenRuntime,
    worker_map: ScId,
    n_workers: usize,
    prefetch: usize,
    tasks: &[NodeRef],
) -> NodeRef {
    assert!(n_workers >= 1, "need at least one worker");
    assert!(prefetch >= 1, "need a prefetch of at least one");
    let pes = rt.num_pes();
    let mut task_dests = Vec::with_capacity(n_workers);
    let mut cursors = Vec::with_capacity(n_workers);
    for w in 0..n_workers {
        let target = place(w, pes);
        let (res_chan, res_node) = rt.new_channel(0, CommMode::Stream);
        let task_chan = rt.fresh_chan();
        rt.spawn(
            target,
            ProcSpec {
                f: worker_map,
                inputs: vec![(task_chan, CommMode::Stream)],
                outputs: vec![(
                    CommMode::Stream,
                    Endpoint {
                        pe: 0,
                        chan: res_chan,
                    },
                )],
            },
        );
        task_dests.push(Endpoint {
            pe: target as u32,
            chan: task_chan,
        });
        cursors.push(res_node);
    }
    let result_placeholder = rt.alloc_placeholder(0);
    rt.pin_root(0, result_placeholder);
    let master = Master {
        pending: tasks.iter().rev().copied().collect(),
        task_dests,
        cursors,
        input_ended: vec![false; n_workers],
        stream_done: vec![false; n_workers],
        collected: Vec::new(),
        result_placeholder,
        started: false,
        prefetch,
    };
    // Task nodes must survive until sent.
    for &t in tasks {
        rt.pin_root(0, t);
    }
    rt.start_native(0, Box::new(master));
    result_placeholder
}

/// The master's coordination logic.
struct Master {
    /// Tasks not yet sent (top of the Vec is the next task).
    pending: Vec<NodeRef>,
    task_dests: Vec<Endpoint>,
    /// Read position in each worker's result stream.
    cursors: Vec<NodeRef>,
    input_ended: Vec<bool>,
    stream_done: Vec<bool>,
    collected: Vec<NodeRef>,
    result_placeholder: NodeRef,
    started: bool,
    prefetch: usize,
}

impl Master {
    fn feed(&mut self, w: usize, ctx: &mut NativeCtx<'_>) -> Result<(), String> {
        if let Some(task) = self.pending.pop() {
            ctx.cost += 500;
            ctx.send_stream_item(self.task_dests[w], task)?;
        } else if !self.input_ended[w] {
            self.input_ended[w] = true;
            ctx.cost += 200;
            ctx.send_stream_end(self.task_dests[w]);
        }
        Ok(())
    }
}

impl NativeLogic for Master {
    fn step(&mut self, ctx: &mut NativeCtx<'_>) -> Result<NativeStep, String> {
        if !self.started {
            self.started = true;
            for w in 0..self.task_dests.len() {
                for _ in 0..self.prefetch {
                    self.feed(w, ctx)?;
                }
            }
        }
        // Drain every result stream as far as it has materialised.
        for w in 0..self.cursors.len() {
            loop {
                if self.stream_done[w] {
                    break;
                }
                match ctx.heap.whnf(self.cursors[w]).cloned() {
                    Some(Value::Cons(h, t)) => {
                        self.collected.push(h);
                        self.cursors[w] = t;
                        ctx.cost += 300;
                        self.feed(w, ctx)?;
                    }
                    Some(Value::Nil) => {
                        self.stream_done[w] = true;
                    }
                    Some(other) => return Err(format!("master: result stream yielded {other:?}")),
                    None => break, // not yet arrived
                }
            }
        }
        if self.stream_done.iter().all(|&d| d) {
            let list = list_of(ctx.heap, &self.collected);
            let rep = ctx.heap.update(self.result_placeholder, list);
            ctx.woken.extend(rep.woken);
            return Ok(NativeStep::Done);
        }
        let waits: Vec<NodeRef> = self
            .cursors
            .iter()
            .zip(&self.stream_done)
            .filter(|(_, done)| !**done)
            .map(|(c, _)| *c)
            .collect();
        Ok(NativeStep::Wait(waits))
    }

    fn push_roots(&self, out: &mut Vec<NodeRef>) {
        out.extend_from_slice(&self.pending);
        out.extend_from_slice(&self.cursors);
        out.extend_from_slice(&self.collected);
        out.push(self.result_placeholder);
    }
}

/// `ring` topology skeleton (§II.A): `n` processes connected in a
/// directed cycle. Process `k` receives `(input_k, ring_in_k)` and
/// produces `(output_k, ring_out_k)`, where `ring_out_k` feeds
/// `ring_in_{(k+1) mod n}` *directly* (child-to-child channels, not
/// through the parent). `node_f` has arity 2 — `\input ringIn ->
/// (output, ringOut)` — inputs travel as single messages, ring traffic
/// as streams. Returns the `n` output placeholders on PE 0.
pub fn ring(rt: &mut EdenRuntime, node_f: ScId, inputs: &[NodeRef]) -> Vec<NodeRef> {
    let n = inputs.len();
    assert!(n >= 1, "ring of zero processes");
    let pes = rt.num_pes();
    // Pre-allocate every ring channel id and every placement so each
    // process knows its successor's endpoint at spawn time.
    let ring_chans: Vec<ChanId> = (0..n).map(|_| rt.fresh_chan()).collect();
    let targets: Vec<usize> = (0..n).map(|k| place(k, pes)).collect();
    let mut outs = Vec::with_capacity(n);
    for (k, &x) in inputs.iter().enumerate() {
        let succ = (k + 1) % n;
        let (out_chan, out_node) = rt.new_channel(0, CommMode::Single);
        let in_chan = rt.fresh_chan();
        rt.spawn(
            targets[k],
            ProcSpec {
                f: node_f,
                inputs: vec![
                    (in_chan, CommMode::Single),
                    (ring_chans[k], CommMode::Stream),
                ],
                outputs: vec![
                    (
                        CommMode::Single,
                        Endpoint {
                            pe: 0,
                            chan: out_chan,
                        },
                    ),
                    (
                        CommMode::Stream,
                        Endpoint {
                            pe: targets[succ] as u32,
                            chan: ring_chans[succ],
                        },
                    ),
                ],
            },
        );
        rt.send_value_from(
            0,
            Endpoint {
                pe: targets[k] as u32,
                chan: in_chan,
            },
            x,
            CommMode::Single,
        );
        outs.push(out_node);
    }
    outs
}

/// `torus` topology skeleton: an `n × n` grid of processes for
/// Cannon's algorithm. Process `(i,j)` receives `(init_ij, rowIn,
/// colIn)` and produces `(result_ij, rowOut, colOut)`; `rowOut` feeds
/// the *left* neighbour `(i, j-1)` and `colOut` the *upper* neighbour
/// `(i-1, j)` (the shift directions of Cannon's algorithm). `node_f`
/// has arity 3. Returns the `n·n` result placeholders on PE 0 in
/// row-major order.
pub fn torus(rt: &mut EdenRuntime, node_f: ScId, n: usize, inits: &[NodeRef]) -> Vec<NodeRef> {
    assert_eq!(inits.len(), n * n, "torus needs n² init values");
    let pes = rt.num_pes();
    let at = |i: usize, j: usize| i * n + j;
    let row_chans: Vec<ChanId> = (0..n * n).map(|_| rt.fresh_chan()).collect();
    let col_chans: Vec<ChanId> = (0..n * n).map(|_| rt.fresh_chan()).collect();
    let targets: Vec<usize> = (0..n * n).map(|k| place(k, pes)).collect();
    let mut outs = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let k = at(i, j);
            let left = at(i, (j + n - 1) % n);
            let up = at((i + n - 1) % n, j);
            let (out_chan, out_node) = rt.new_channel(0, CommMode::Single);
            let in_chan = rt.fresh_chan();
            rt.spawn(
                targets[k],
                ProcSpec {
                    f: node_f,
                    inputs: vec![
                        (in_chan, CommMode::Single),
                        (row_chans[k], CommMode::Stream),
                        (col_chans[k], CommMode::Stream),
                    ],
                    outputs: vec![
                        (
                            CommMode::Single,
                            Endpoint {
                                pe: 0,
                                chan: out_chan,
                            },
                        ),
                        (
                            CommMode::Stream,
                            Endpoint {
                                pe: targets[left] as u32,
                                chan: row_chans[left],
                            },
                        ),
                        (
                            CommMode::Stream,
                            Endpoint {
                                pe: targets[up] as u32,
                                chan: col_chans[up],
                            },
                        ),
                    ],
                },
            );
            rt.send_value_from(
                0,
                Endpoint {
                    pe: targets[k] as u32,
                    chan: in_chan,
                },
                inits[k],
                CommMode::Single,
            );
            outs.push(out_node);
        }
    }
    outs
}

/// The paper's *full* `masterWorker` signature (§II.A):
/// `masterWorker :: (a -> ([a], b)) -> [a] -> [b]` — every processed
/// task may generate *new* tasks ("a large, and dynamically changing,
/// set of irregularly-sized tasks"; with a cutoff in `f` this is
/// backtracking / branch-and-bound).
///
/// `worker_map` has arity 1 and must lazily map `f` over its task
/// stream, where `f task` evaluates to a 2-tuple `(newTasks, result)`
/// in normal form. The master feeds new tasks back into the bag and
/// finishes when the bag is empty and nothing is in flight.
///
/// Returns the placeholder on PE 0 that receives the list of all
/// results (completion order).
pub fn master_worker_dyn(
    rt: &mut EdenRuntime,
    worker_map: ScId,
    n_workers: usize,
    prefetch: usize,
    initial: &[NodeRef],
) -> NodeRef {
    assert!(n_workers >= 1 && prefetch >= 1);
    let pes = rt.num_pes();
    let mut task_dests = Vec::with_capacity(n_workers);
    let mut cursors = Vec::with_capacity(n_workers);
    for w in 0..n_workers {
        let target = place(w, pes);
        let (res_chan, res_node) = rt.new_channel(0, CommMode::Stream);
        let task_chan = rt.fresh_chan();
        rt.spawn(
            target,
            ProcSpec {
                f: worker_map,
                inputs: vec![(task_chan, CommMode::Stream)],
                outputs: vec![(
                    CommMode::Stream,
                    Endpoint {
                        pe: 0,
                        chan: res_chan,
                    },
                )],
            },
        );
        task_dests.push(Endpoint {
            pe: target as u32,
            chan: task_chan,
        });
        cursors.push(res_node);
    }
    let result_placeholder = rt.alloc_placeholder(0);
    rt.pin_root(0, result_placeholder);
    for &t in initial {
        rt.pin_root(0, t);
    }
    rt.start_native(
        0,
        Box::new(DynMaster {
            pending: initial.iter().rev().copied().collect(),
            task_dests,
            cursors,
            outstanding: vec![0; n_workers],
            input_ended: vec![false; n_workers],
            stream_done: vec![false; n_workers],
            collected: Vec::new(),
            result_placeholder,
            prefetch,
        }),
    );
    result_placeholder
}

struct DynMaster {
    pending: Vec<NodeRef>,
    task_dests: Vec<Endpoint>,
    cursors: Vec<NodeRef>,
    /// Tasks sent to each worker whose results have not come back.
    outstanding: Vec<usize>,
    input_ended: Vec<bool>,
    stream_done: Vec<bool>,
    collected: Vec<NodeRef>,
    result_placeholder: NodeRef,
    prefetch: usize,
}

impl DynMaster {
    fn total_outstanding(&self) -> usize {
        self.outstanding.iter().sum()
    }
}

impl NativeLogic for DynMaster {
    fn step(&mut self, ctx: &mut NativeCtx<'_>) -> Result<NativeStep, String> {
        // Drain arrived results, harvesting generated tasks.
        for w in 0..self.cursors.len() {
            loop {
                if self.stream_done[w] {
                    break;
                }
                match ctx.heap.whnf(self.cursors[w]).cloned() {
                    Some(Value::Cons(h, t)) => {
                        let hr = ctx.heap.resolve(h);
                        let (new_tasks, result) = match ctx.heap.whnf(hr) {
                            Some(Value::Tuple(fs)) if fs.len() == 2 => (fs[0], fs[1]),
                            other => {
                                return Err(format!(
                                    "dynamic master: expected (newTasks, result), got {other:?}"
                                ))
                            }
                        };
                        // Walk the (normal-form) new-task list.
                        let mut cur = ctx.heap.resolve(new_tasks);
                        loop {
                            match ctx.heap.whnf(cur).cloned() {
                                Some(Value::Nil) => break,
                                Some(Value::Cons(task, rest)) => {
                                    self.pending.push(task);
                                    cur = ctx.heap.resolve(rest);
                                }
                                other => {
                                    return Err(format!("dynamic master: bad task list {other:?}"))
                                }
                            }
                        }
                        self.collected.push(result);
                        self.outstanding[w] -= 1;
                        self.cursors[w] = t;
                        ctx.cost += 400;
                    }
                    Some(Value::Nil) => self.stream_done[w] = true,
                    Some(other) => return Err(format!("dynamic master: result stream {other:?}")),
                    None => break,
                }
            }
        }
        // Distribute the bag, keeping ≤ prefetch tasks per worker in
        // flight.
        loop {
            let mut progressed = false;
            for w in 0..self.task_dests.len() {
                if self.input_ended[w] || self.outstanding[w] >= self.prefetch {
                    continue;
                }
                if let Some(task) = self.pending.pop() {
                    ctx.cost += 500;
                    ctx.send_stream_item(self.task_dests[w], task)?;
                    self.outstanding[w] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Termination: bag empty and nothing in flight ⇒ close inputs.
        if self.pending.is_empty() && self.total_outstanding() == 0 {
            for w in 0..self.task_dests.len() {
                if !self.input_ended[w] {
                    self.input_ended[w] = true;
                    ctx.cost += 200;
                    ctx.send_stream_end(self.task_dests[w]);
                }
            }
        }
        if self.stream_done.iter().all(|&d| d) {
            let list = list_of(ctx.heap, &self.collected);
            let rep = ctx.heap.update(self.result_placeholder, list);
            ctx.woken.extend(rep.woken);
            return Ok(NativeStep::Done);
        }
        let waits: Vec<NodeRef> = self
            .cursors
            .iter()
            .zip(&self.stream_done)
            .filter(|(_, d)| !**d)
            .map(|(c, _)| *c)
            .collect();
        Ok(NativeStep::Wait(waits))
    }

    fn push_roots(&self, out: &mut Vec<NodeRef>) {
        out.extend_from_slice(&self.pending);
        out.extend_from_slice(&self.cursors);
        out.extend_from_slice(&self.collected);
        out.push(self.result_placeholder);
    }
}

/// `parReduce f ntr list` (§II.A): parallel reduction. The list (given
/// as pre-split sublist nodes, like the paper's `splitIntoN noPE`) is
/// folded remotely — one process per sublist running `fold_sc` (arity
/// 1: sublist → partial) — and the partials are combined at the parent
/// with `combine_sc` (arity 1: partial list → result).
///
/// This is exactly the paper's implementation shape:
/// ```text
/// parReduce f ntr list = foldl' f ntr rs
///   where rs = spawn (repeat (process (foldl' f ntr))) ls
///         ls = splitIntoN noPE list
/// ```
pub fn par_reduce(
    rt: &mut EdenRuntime,
    fold_sc: ScId,
    combine_sc: ScId,
    sublists: &[NodeRef],
) -> NodeRef {
    par_map_fold(rt, fold_sc, combine_sc, sublists)
}
