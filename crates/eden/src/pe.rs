//! One processing element: a complete sequential runtime with a
//! private heap.

use crate::channel::{ChanId, ChanState};
use crate::job::{Job, Msg, NativeLogic};
use rph_heap::gc::Collector;
use rph_heap::{AllocArea, Cell, Heap, NodeRef};
use rph_machine::Machine;
use rph_sim::EventQueue;
use rph_trace::{State, ThreadId, Time};
use std::collections::{BTreeMap, VecDeque};

/// A machine-driven thread on a PE.
pub struct EdenTso {
    pub machine: Machine,
    pub job: Job,
    /// When this thread was last installed (time-slice accounting).
    pub started: Time,
}

/// A native (machine-less) coordination thread.
pub struct NativeTso {
    pub tid: ThreadId,
    pub logic: Box<dyn NativeLogic>,
}

/// One processing element.
pub struct Pe {
    pub id: u32,
    pub clock: Time,
    pub heap: Heap,
    pub collector: Collector,
    pub area: AllocArea,
    /// Runnable machine threads.
    pub run_q: VecDeque<EdenTso>,
    pub current: Option<EdenTso>,
    /// Threads blocked on placeholders / local black holes. Ordered
    /// (`BTreeMap`) because `collect_roots` iterates it: hash-order
    /// iteration would make GC root order — and thus post-GC heap
    /// layout — vary run-to-run.
    pub blocked: BTreeMap<ThreadId, EdenTso>,
    /// Native threads ready to step.
    pub natives_ready: VecDeque<NativeTso>,
    /// Native threads waiting for any of their nodes to become WHNF.
    pub natives_waiting: Vec<(NativeTso, Vec<NodeRef>)>,
    /// Receiver-side channel registry. Ordered for the same reason as
    /// `blocked`: its values are GC roots.
    pub chans: BTreeMap<ChanId, ChanState>,
    /// Incoming messages, ordered by delivery time.
    pub inbox: EventQueue<Msg>,
    /// Extra GC roots pinned by the runtime / skeletons.
    pub pinned: Vec<NodeRef>,
    /// Last traced state.
    pub last_state: Option<State>,
}

impl Pe {
    pub fn new(id: u32, area_words: u64, checkpoint_words: u64) -> Self {
        Pe {
            id,
            clock: 0,
            heap: Heap::new(),
            collector: Collector::new(),
            area: AllocArea::new(area_words, checkpoint_words),
            run_q: VecDeque::new(),
            current: None,
            blocked: BTreeMap::new(),
            natives_ready: VecDeque::new(),
            natives_waiting: Vec::new(),
            chans: BTreeMap::new(),
            inbox: EventQueue::new(),
            pinned: Vec::new(),
            last_state: None,
        }
    }

    /// Does this PE have something it could run right now (ignoring
    /// undelivered messages)?
    pub fn has_runnable(&self) -> bool {
        self.current.is_some() || !self.run_q.is_empty() || !self.natives_ready.is_empty()
    }

    /// The earliest virtual time at which this PE can make progress:
    /// its clock if it has runnable work, else the next inbox delivery
    /// (clamped below by its clock), else `None` (fully quiescent).
    pub fn ready_time(&self) -> Option<Time> {
        if self.has_runnable() {
            Some(self.clock)
        } else {
            self.inbox.peek_time().map(|t| t.max(self.clock))
        }
    }

    /// Allocate a fresh placeholder (an empty black hole a message
    /// delivery will update).
    pub fn alloc_placeholder(&mut self) -> NodeRef {
        self.heap.alloc(Cell::BlackHole {
            blocked: Vec::new(),
        })
    }

    /// Wake native threads whose wait set now contains a WHNF node.
    pub fn wake_natives(&mut self) {
        let heap = &self.heap;
        let mut i = 0;
        while i < self.natives_waiting.len() {
            let any_ready = self.natives_waiting[i]
                .1
                .iter()
                .any(|r| heap.whnf(*r).is_some());
            if any_ready {
                let (tso, _) = self.natives_waiting.swap_remove(i);
                self.natives_ready.push_back(tso);
            } else {
                i += 1;
            }
        }
    }

    /// All GC roots of this PE.
    pub fn collect_roots(&self) -> Vec<NodeRef> {
        let mut roots = self.pinned.clone();
        if let Some(t) = &self.current {
            t.machine.push_roots(&mut roots);
            t.job.push_roots(&mut roots);
        }
        for t in &self.run_q {
            t.machine.push_roots(&mut roots);
            t.job.push_roots(&mut roots);
        }
        for t in self.blocked.values() {
            t.machine.push_roots(&mut roots);
            t.job.push_roots(&mut roots);
        }
        for n in &self.natives_ready {
            n.logic.push_roots(&mut roots);
        }
        for (n, waits) in &self.natives_waiting {
            n.logic.push_roots(&mut roots);
            roots.extend_from_slice(waits);
        }
        for st in self.chans.values() {
            roots.push(st.placeholder());
        }
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_time_logic() {
        let mut pe = Pe::new(0, 1 << 20, 512);
        assert_eq!(pe.ready_time(), None);
        pe.inbox.push(500, Msg::StreamEnd { chan: ChanId(0) });
        assert_eq!(pe.ready_time(), Some(500));
        pe.clock = 900;
        assert_eq!(pe.ready_time(), Some(900), "clamped by clock");
        pe.run_q.push_back(EdenTso {
            machine: Machine::enter(ThreadId(1), {
                // a dummy node
                pe.heap.int(0)
            }),
            job: Job::Main,
            started: 0,
        });
        assert_eq!(pe.ready_time(), Some(900));
        assert!(pe.has_runnable());
    }

    #[test]
    fn placeholder_is_blackhole_and_updatable() {
        let mut pe = Pe::new(0, 1 << 20, 512);
        let p = pe.alloc_placeholder();
        assert!(pe.heap.whnf(p).is_none());
        let v = pe.heap.int(42);
        let rep = pe.heap.update(p, v);
        assert!(!rep.duplicate);
        assert_eq!(pe.heap.expect_value(p).expect_int(), 42);
    }

    #[test]
    fn roots_include_channels_and_pins() {
        let mut pe = Pe::new(0, 1 << 20, 512);
        let p = pe.alloc_placeholder();
        pe.chans
            .insert(ChanId(1), ChanState::Single { placeholder: p });
        let x = pe.heap.int(7);
        pe.pinned.push(x);
        let roots = pe.collect_roots();
        assert!(roots.contains(&p));
        assert!(roots.contains(&x));
    }
}
