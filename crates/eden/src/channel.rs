//! Channels, communication modes, and endpoints.

/// A globally unique channel identifier. The parent allocates channel
/// ids before spawning, which lets skeletons wire arbitrary process
/// topologies (ring, torus) by telling one child to send directly to a
/// sibling's input channel — Eden's "dynamic channels".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChanId(pub u64);

impl std::fmt::Display for ChanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Where a message goes: a channel on a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    pub pe: u32,
    pub chan: ChanId,
}

/// How a value travels over a channel — Eden's overloaded `Trans`
/// communication semantics (§II.A):
///
/// * `Single`: reduce to normal form, send in one message.
/// * `Stream`: a top-level list is evaluated and sent element by
///   element (each element itself in normal form).
///
/// Tuples are not a `CommMode`: a tuple-valued process output gets one
/// independent channel (and sender thread) *per component*, each with
/// its own mode — that is handled by the spawn API, mirroring how
/// Eden's `Trans` instances create a thread per tuple component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    Single,
    Stream,
}

/// Receiver-side state of a channel.
#[derive(Debug, Clone, Copy)]
pub enum ChanState {
    /// A single value will arrive and overwrite this placeholder.
    Single { placeholder: rph_heap::NodeRef },
    /// A stream: `tail` is the placeholder for the not-yet-received
    /// rest of the list; each `StreamItem` conses onto it and rolls the
    /// placeholder forward.
    Stream { tail: rph_heap::NodeRef },
}

impl ChanState {
    /// The placeholder node currently representing future data.
    pub fn placeholder(&self) -> rph_heap::NodeRef {
        match self {
            ChanState::Single { placeholder } => *placeholder,
            ChanState::Stream { tail } => *tail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_eq() {
        assert_eq!(ChanId(4).to_string(), "ch4");
        assert_eq!(
            Endpoint {
                pe: 1,
                chan: ChanId(2)
            },
            Endpoint {
                pe: 1,
                chan: ChanId(2)
            }
        );
    }
}
