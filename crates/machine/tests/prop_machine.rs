//! Property tests: the explicit-state machine agrees with the big-step
//! reference interpreter and with a plain-Rust model on randomly
//! composed list pipelines.

use proptest::prelude::*;
use rph_heap::{Heap, NodeRef, Value};
use rph_machine::prelude::{self, Prelude};
use rph_machine::reference::{alloc_int_list, force_deep, read_int_list, run_seq_deep};
use rph_machine::{Program, ProgramBuilder};
use std::sync::Arc;

/// One pipeline stage, mirrored in Rust.
#[derive(Debug, Clone)]
enum Stage {
    MapInc,
    Take(i64),
    Drop(i64),
    /// `append xs xs` — exercises sharing (both arguments are the same
    /// graph node).
    AppendSelf,
    /// `concat (chunk k xs)` — the identity, via nested lists.
    ChunkConcat(i64),
    /// `append (drop h) (take h)` with `h = len/2` — a rotation, with
    /// the input node referenced twice.
    Rotate,
}

fn stage_strategy() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::MapInc),
        (0i64..20).prop_map(Stage::Take),
        (0i64..20).prop_map(Stage::Drop),
        Just(Stage::AppendSelf),
        (1i64..6).prop_map(Stage::ChunkConcat),
        Just(Stage::Rotate),
    ]
}

/// Apply one stage to the Rust-side model.
fn model(stage: &Stage, xs: Vec<i64>) -> Vec<i64> {
    match stage {
        Stage::MapInc => xs.into_iter().map(|x| x + 1).collect(),
        Stage::Take(k) => xs.into_iter().take((*k).max(0) as usize).collect(),
        Stage::Drop(k) => xs.into_iter().skip((*k).max(0) as usize).collect(),
        Stage::AppendSelf => {
            let mut out = xs.clone();
            out.extend(xs);
            out
        }
        Stage::ChunkConcat(_) => xs,
        Stage::Rotate => {
            let h = xs.len() / 2;
            let mut out = xs[h..].to_vec();
            out.extend_from_slice(&xs[..h]);
            out
        }
    }
}

/// Apply one stage to the graph (the split point of `Rotate` comes from
/// the model-tracked length, but the list manipulation itself is done
/// by the lazy program).
fn apply_stage(pre: &Prelude, heap: &mut Heap, stage: &Stage, xs: NodeRef, len: usize) -> NodeRef {
    match stage {
        Stage::MapInc => {
            let f = heap.alloc_value(Value::Pap {
                sc: pre.inc,
                args: Box::new([]),
            });
            heap.alloc_thunk(pre.map, vec![f, xs])
        }
        Stage::Take(k) => {
            let kk = heap.int(*k);
            heap.alloc_thunk(pre.take, vec![kk, xs])
        }
        Stage::Drop(k) => {
            let kk = heap.int(*k);
            heap.alloc_thunk(pre.drop, vec![kk, xs])
        }
        Stage::AppendSelf => heap.alloc_thunk(pre.append, vec![xs, xs]),
        Stage::ChunkConcat(k) => {
            let kk = heap.int(*k);
            let chunked = heap.alloc_thunk(pre.chunk, vec![kk, xs]);
            heap.alloc_thunk(pre.concat, vec![chunked])
        }
        Stage::Rotate => {
            let h = (len / 2) as i64;
            let k1 = heap.int(h);
            let k2 = heap.int(h);
            let dropped = heap.alloc_thunk(pre.drop, vec![k1, xs]);
            let taken = heap.alloc_thunk(pre.take, vec![k2, xs]);
            heap.alloc_thunk(pre.append, vec![dropped, taken])
        }
    }
}

/// Build the whole pipeline in a heap, returning the output node and
/// the model's expected result.
fn build(pre: &Prelude, heap: &mut Heap, xs: &[i64], stages: &[Stage]) -> (NodeRef, Vec<i64>) {
    let mut node = alloc_int_list(heap, xs);
    let mut tracked = xs.to_vec();
    for s in stages {
        node = apply_stage(pre, heap, s, node, tracked.len());
        tracked = model(s, tracked);
    }
    (node, tracked)
}

fn with_prelude() -> (Arc<Program>, Prelude) {
    let mut b = ProgramBuilder::new();
    let p = prelude::install(&mut b);
    (b.build(), p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// machine == reference == Rust model on random pipelines.
    #[test]
    fn machine_matches_reference_and_model(
        xs in proptest::collection::vec(-100i64..100, 0..25),
        stages in proptest::collection::vec(stage_strategy(), 0..5),
    ) {
        let (prog, pre) = with_prelude();

        // Explicit-state machine.
        let mut heap_m = Heap::new();
        let (node, expect) = build(&pre, &mut heap_m, &xs, &stages);
        let (r, _) = run_seq_deep(&prog, &mut heap_m, node);
        prop_assert_eq!(read_int_list(&heap_m, r), expect.clone());

        // Reference interpreter, fresh heap, same construction.
        let mut heap_r = Heap::new();
        let (node, expect2) = build(&pre, &mut heap_r, &xs, &stages);
        prop_assert_eq!(&expect2, &expect);
        let r = force_deep(&prog, &mut heap_r, node).expect("reference eval");
        prop_assert_eq!(read_int_list(&heap_r, r), expect);
    }

    /// sum, length and last agree with Rust folds for any list.
    #[test]
    fn folds_agree(xs in proptest::collection::vec(-1000i64..1000, 0..40)) {
        let (prog, pre) = with_prelude();
        let mut heap = Heap::new();
        let l = alloc_int_list(&mut heap, &xs);
        let s = heap.alloc_thunk(pre.sum, vec![l]);
        let (r, _) = run_seq_deep(&prog, &mut heap, s);
        prop_assert_eq!(heap.expect_value(r).expect_int(), xs.iter().sum::<i64>());

        let mut heap = Heap::new();
        let l = alloc_int_list(&mut heap, &xs);
        let n = heap.alloc_thunk(pre.length, vec![l]);
        let (r, _) = run_seq_deep(&prog, &mut heap, n);
        prop_assert_eq!(heap.expect_value(r).expect_int(), xs.len() as i64);

        if let Some(&lst) = xs.last() {
            let mut heap = Heap::new();
            let l = alloc_int_list(&mut heap, &xs);
            let e = heap.alloc_thunk(pre.last, vec![l]);
            let (r, _) = run_seq_deep(&prog, &mut heap, e);
            prop_assert_eq!(heap.expect_value(r).expect_int(), lst);
        }
    }

    /// zipWith add agrees with the Rust zip for any pair of lists.
    #[test]
    fn zip_with_agrees(
        a in proptest::collection::vec(-100i64..100, 0..30),
        b in proptest::collection::vec(-100i64..100, 0..30),
    ) {
        let (prog, pre) = with_prelude();
        let mut heap = Heap::new();
        let la = alloc_int_list(&mut heap, &a);
        let lb = alloc_int_list(&mut heap, &b);
        let f = heap.alloc_value(Value::Pap { sc: pre.add, args: Box::new([]) });
        let z = heap.alloc_thunk(pre.zip_with, vec![f, la, lb]);
        let (r, _) = run_seq_deep(&prog, &mut heap, z);
        let expect: Vec<i64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        prop_assert_eq!(read_int_list(&heap, r), expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// filter, reverse, elem and maximum agree with their Rust models.
    #[test]
    fn filter_reverse_elem_maximum_agree(
        xs in proptest::collection::vec(-50i64..50, 0..30),
        needle in -50i64..50,
    ) {
        let (prog, pre) = with_prelude();

        // reverse
        let mut heap = Heap::new();
        let l = alloc_int_list(&mut heap, &xs);
        let r = heap.alloc_thunk(pre.reverse, vec![l]);
        let (out, _) = run_seq_deep(&prog, &mut heap, r);
        let mut expect = xs.clone();
        expect.reverse();
        prop_assert_eq!(read_int_list(&heap, out), expect);

        // elem
        let mut heap = Heap::new();
        let l = alloc_int_list(&mut heap, &xs);
        let x = heap.int(needle);
        let e = heap.alloc_thunk(pre.elem, vec![x, l]);
        let (out, _) = run_seq_deep(&prog, &mut heap, e);
        prop_assert_eq!(
            heap.expect_value(out).expect_bool(),
            xs.contains(&needle)
        );

        // maximum (non-empty only)
        if !xs.is_empty() {
            let mut heap = Heap::new();
            let l = alloc_int_list(&mut heap, &xs);
            let m = heap.alloc_thunk(pre.maximum, vec![l]);
            let (out, _) = run_seq_deep(&prog, &mut heap, m);
            prop_assert_eq!(
                heap.expect_value(out).expect_int(),
                *xs.iter().max().unwrap()
            );
        }
    }

    /// filter with a real predicate supercombinator.
    #[test]
    fn filter_agrees(xs in proptest::collection::vec(-50i64..50, 0..30), lim in -50i64..50) {
        use rph_machine::ir::*;
        use rph_machine::PrimOp;
        let mut b = ProgramBuilder::new();
        let pre = prelude::install(&mut b);
        // bigger lim x = x > lim
        let bigger = b.def("bigger", 2, prim(PrimOp::Gt, vec![v(1), v(0)]));
        let prog = b.build();
        let mut heap = Heap::new();
        let l = alloc_int_list(&mut heap, &xs);
        let limn = heap.int(lim);
        let p = heap.alloc_value(Value::Pap { sc: bigger, args: vec![limn].into() });
        let f = heap.alloc_thunk(pre.filter, vec![p, l]);
        let (out, _) = run_seq_deep(&prog, &mut heap, f);
        let expect: Vec<i64> = xs.iter().copied().filter(|&x| x > lim).collect();
        prop_assert_eq!(read_int_list(&heap, out), expect);
    }
}
