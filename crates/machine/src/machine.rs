//! The explicit-state lazy evaluator.
//!
//! One [`Machine`] is the evaluation state of one lightweight thread
//! (GHC: a TSO): current code, environment, and continuation stack.
//! Schedulers drive it in *slices* via [`Machine::run`]: evaluation
//! proceeds until the slice's fuel runs out, an allocation checkpoint
//! is crossed (the only points where GHC threads notice context-switch
//! and GC requests — the mechanism behind the paper's barrier delays),
//! the thread blocks on a black hole, or it finishes.
//!
//! Black-holing policy is per-run-context: *eager* overwrites a thunk
//! with a black hole at entry; *lazy* (GHC's default, §IV.A.3 of the
//! paper) leaves the thunk in place, so duplicate evaluation can start
//! on another capability until the next context switch, when
//! [`Machine::blackhole_update_frames`] walks the update frames —
//! exactly what GHC's lazy black-holing does at context switch.

use crate::ir::{Alts, Atom, Expr, LetRhs, E};
use crate::primop::{apply_prim, PrimError, PrimOp};
use crate::program::{Program, ScBody};
use rph_heap::area::AllocOutcome;
use rph_heap::heap::Claim;
use rph_heap::{AllocArea, Cell, Heap, NodeRef, ScId, Value};
use rph_trace::ThreadId;

/// Shared evaluation context for one slice: program, heap, allocation
/// area of the running capability, black-holing mode, and the slice's
/// outputs (sparks created, threads woken by updates, duplicate-work
/// reports).
pub struct RunCtx<'a> {
    pub program: &'a Program,
    pub heap: &'a mut Heap,
    pub area: &'a mut AllocArea,
    /// Eager vs lazy black-holing (paper §IV.A.3).
    pub eager_blackhole: bool,
    /// Sparks recorded by `par` during this slice, for the scheduler
    /// to move into the spark pool.
    pub sparks: Vec<NodeRef>,
    /// Threads unblocked by updates during this slice.
    pub woken: Vec<ThreadId>,
    /// Wasted work (in work units) detected per duplicate update.
    pub duplicate_work: Vec<u64>,
    /// Set when an allocation crossed a checkpoint boundary.
    checkpoint: bool,
}

impl<'a> RunCtx<'a> {
    pub fn new(
        program: &'a Program,
        heap: &'a mut Heap,
        area: &'a mut AllocArea,
        eager_blackhole: bool,
    ) -> Self {
        RunCtx {
            program,
            heap,
            area,
            eager_blackhole,
            sparks: Vec::new(),
            woken: Vec::new(),
            duplicate_work: Vec::new(),
            checkpoint: false,
        }
    }

    /// Allocate a cell, charging the allocation area.
    fn alloc(&mut self, cell: Cell) -> NodeRef {
        let words = cell.words();
        if self.area.charge(words) == AllocOutcome::Checkpoint {
            self.checkpoint = true;
        }
        self.heap.alloc(cell)
    }
}

/// Why a slice ended.
#[derive(Debug, Clone, PartialEq)]
pub enum StopReason {
    /// The fuel budget was consumed (the simulator's slice bound — not
    /// a scheduling point for the thread itself).
    FuelExhausted,
    /// A spark was recorded by `par`. The slice ends so the scheduler
    /// can publish the spark immediately — in GHC the spark pool is
    /// shared memory and a thief can see a spark the instant `par`
    /// writes it. Not a scheduling point for the thread.
    Sparked,
    /// An allocation checkpoint was crossed: the thread must look at
    /// the runtime's context-switch and GC flags now.
    Checkpoint,
    /// Blocked on a black hole (the node is under evaluation elsewhere).
    Blocked(NodeRef),
    /// Evaluation finished with this WHNF node.
    Finished(NodeRef),
    /// The program is erroneous (bad primop operands, unbound variable,
    /// over-application). Carried as data so harnesses can report it.
    Error(String),
}

/// A completed slice: virtual-time cost consumed and why it stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct Slice {
    pub cost: u64,
    pub stop: StopReason,
}

/// Lifecycle status of a machine, tracked by schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineStatus {
    Runnable,
    Blocked,
    Finished,
}

type Env = Vec<NodeRef>;

/// What the machine is about to do.
#[derive(Debug, Clone)]
enum Code {
    /// Evaluate an expression in an environment.
    Eval(E, Env),
    /// Force a node to WHNF.
    Enter(NodeRef),
    /// A WHNF node is being returned to the top continuation.
    Return(NodeRef),
    /// A native kernel's work being paid off in checkpoint-sized
    /// pieces. The Rust code already computed `result`; the thread
    /// "runs the loop" in virtual time, allocating as it goes — so
    /// kernels hit allocation checkpoints, join GC barriers, get their
    /// frames lazily black-holed on timer yields, and can be raced by
    /// duplicate entrants exactly like GHC-compiled inner loops.
    Kernel {
        result: NodeRef,
        cost_left: u64,
        alloc_left: u64,
    },
}

/// Cost paid per kernel piece (≈ 8 µs of inner loop between bookkeeping
/// points; allocation is spread proportionally, so a typical kernel
/// crosses an allocation checkpoint every few pieces).
const KERNEL_PIECE: u64 = 8_192;

/// Continuations.
#[derive(Debug, Clone)]
enum Kont {
    /// Select a case alternative when the scrutinee returns.
    Case { alts: Alts, env: Env },
    /// Update this thunk with the returned value (GHC update frame).
    /// `start_cost` is the machine's cumulative cost when the frame
    /// was pushed, for duplicate-work accounting.
    Update { node: NodeRef, start_cost: u64 },
    /// Evaluate `b` after the forced value is discarded (`seq`).
    Seq { b: E, env: Env },
    /// Force primop operands one by one, then apply.
    PrimK {
        op: PrimOp,
        nodes: Vec<NodeRef>,
        next: usize,
    },
    /// Force kernel arguments one by one, then invoke the kernel.
    KernelK {
        sc: ScId,
        nodes: Vec<NodeRef>,
        next: usize,
    },
    /// Force a function value, then apply it to the argument nodes.
    ApplyK { args: Vec<NodeRef> },
    /// Deep (normal-form) forcing: nodes still to visit, and the root
    /// to return when done.
    DeepK {
        root: NodeRef,
        pending: Vec<NodeRef>,
    },
}

/// The evaluation state of one lightweight thread.
#[derive(Debug)]
pub struct Machine {
    tid: ThreadId,
    code: Code,
    konts: Vec<Kont>,
    /// Cumulative work units executed by this machine.
    cost_total: u64,
    status: MachineStatus,
    /// Scratch buffer reused when collecting children for deep forcing.
    child_buf: Vec<NodeRef>,
}

// Base cost (work units) per machine transition — roughly the handful
// of instructions GHC spends per STG transition.
const C_STEP: u64 = 2;
// Entering/claiming a thunk and pushing an update frame.
const C_CLAIM: u64 = 4;
// Performing an update (write + indirection).
const C_UPDATE: u64 = 4;
// Recording a spark (a pool write).
const C_PAR: u64 = 3;
// Allocation cost per word (bump allocation).
const C_ALLOC_WORD: u64 = 1;

impl Machine {
    /// A machine that will force `node` to WHNF (how spark threads and
    /// the main thread start: everything is a graph node to enter).
    pub fn enter(tid: ThreadId, node: NodeRef) -> Self {
        Machine {
            tid,
            code: Code::Enter(node),
            konts: Vec::new(),
            cost_total: 0,
            status: MachineStatus::Runnable,
            child_buf: Vec::new(),
        }
    }

    /// A machine that will force `node` to full normal form (Eden
    /// sender threads normalise before transmission).
    pub fn enter_deep(tid: ThreadId, node: NodeRef) -> Self {
        let mut m = Self::enter(tid, node);
        m.konts.push(Kont::DeepK {
            root: node,
            pending: Vec::new(),
        });
        m
    }

    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    pub fn status(&self) -> MachineStatus {
        self.status
    }

    /// Cumulative work units executed.
    pub fn cost_total(&self) -> u64 {
        self.cost_total
    }

    /// Mark runnable again after the black hole this machine blocked on
    /// was updated.
    pub fn wake(&mut self) {
        debug_assert_eq!(self.status, MachineStatus::Blocked);
        self.status = MachineStatus::Runnable;
    }

    /// GC roots held by this machine: everything its code and
    /// continuations can still reach.
    pub fn push_roots(&self, out: &mut Vec<NodeRef>) {
        match &self.code {
            Code::Eval(_, env) => out.extend_from_slice(env),
            Code::Enter(r) | Code::Return(r) => out.push(*r),
            Code::Kernel { result, .. } => out.push(*result),
        }
        for k in &self.konts {
            match k {
                Kont::Case { env, .. } | Kont::Seq { env, .. } => out.extend_from_slice(env),
                Kont::Update { node, .. } => out.push(*node),
                Kont::PrimK { nodes, .. } | Kont::KernelK { nodes, .. } => {
                    out.extend_from_slice(nodes)
                }
                Kont::ApplyK { args } => out.extend_from_slice(args),
                Kont::DeepK { root, pending } => {
                    out.push(*root);
                    out.extend_from_slice(pending);
                }
            }
        }
    }

    /// Lazy black-holing at context switch: overwrite every thunk with
    /// a pending update frame by a black hole (GHC does precisely this
    /// scan of the TSO stack). Returns how many thunks were marked.
    pub fn blackhole_update_frames(&self, heap: &mut Heap) -> usize {
        let mut n = 0;
        for k in &self.konts {
            if let Kont::Update { node, .. } = k {
                if heap.blackhole(*node) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Run until `fuel` work units are consumed, a checkpoint is
    /// crossed, the thread blocks, or it finishes.
    pub fn run(&mut self, ctx: &mut RunCtx<'_>, fuel: u64) -> Slice {
        assert_eq!(
            self.status,
            MachineStatus::Runnable,
            "running a non-runnable machine"
        );
        ctx.checkpoint = false;
        let mut spent: u64 = 0;
        loop {
            if spent >= fuel {
                return Slice {
                    cost: spent,
                    stop: StopReason::FuelExhausted,
                };
            }
            let before = ctx.area.total_allocated();
            let step = match self.step(ctx) {
                Ok(s) => s,
                Err(msg) => {
                    self.status = MachineStatus::Finished;
                    return Slice {
                        cost: spent,
                        stop: StopReason::Error(msg),
                    };
                }
            };
            let alloc_words = ctx.area.total_allocated() - before;
            let cost = step.base_cost + alloc_words * C_ALLOC_WORD;
            spent += cost;
            self.cost_total += cost;
            match step.outcome {
                Outcome::Continue => {
                    if ctx.checkpoint {
                        ctx.checkpoint = false;
                        return Slice {
                            cost: spent,
                            stop: StopReason::Checkpoint,
                        };
                    }
                    if !ctx.sparks.is_empty() {
                        return Slice {
                            cost: spent,
                            stop: StopReason::Sparked,
                        };
                    }
                }
                Outcome::Blocked(r) => {
                    self.status = MachineStatus::Blocked;
                    return Slice {
                        cost: spent,
                        stop: StopReason::Blocked(r),
                    };
                }
                Outcome::Finished(r) => {
                    self.status = MachineStatus::Finished;
                    return Slice {
                        cost: spent,
                        stop: StopReason::Finished(r),
                    };
                }
            }
        }
    }

    // ----- single transition -----

    fn step(&mut self, ctx: &mut RunCtx<'_>) -> Result<Step, String> {
        // Take the code out; every branch must put something back or end.
        let code = std::mem::replace(&mut self.code, Code::Return(NodeRef(u32::MAX)));
        match code {
            Code::Eval(e, env) => self.eval(e, env, ctx),
            Code::Enter(r) => self.enter_node(r, ctx),
            Code::Return(r) => self.return_node(r, ctx),
            Code::Kernel {
                result,
                cost_left,
                alloc_left,
            } => {
                let piece = cost_left.min(KERNEL_PIECE);
                let alloc_piece = if cost_left > piece {
                    // Proportional allocation, rounding the remainder
                    // into the final piece.
                    (alloc_left as u128 * piece as u128 / cost_left as u128) as u64
                } else {
                    alloc_left
                };
                if ctx.area.charge(alloc_piece) == AllocOutcome::Checkpoint {
                    ctx.checkpoint = true;
                }
                if cost_left > piece {
                    self.code = Code::Kernel {
                        result,
                        cost_left: cost_left - piece,
                        alloc_left: alloc_left - alloc_piece,
                    };
                } else {
                    self.code = Code::Return(result);
                }
                Ok(Step::cont(piece))
            }
        }
    }

    fn eval(&mut self, e: E, mut env: Env, ctx: &mut RunCtx<'_>) -> Result<Step, String> {
        match &*e {
            Expr::Atom(a) => {
                let r = self.atom(a, &env, ctx)?;
                self.code = Code::Enter(r);
                Ok(Step::cont(C_STEP))
            }
            Expr::App { sc, args } => {
                let nodes = self.atoms(args, &env, ctx)?;
                self.call_sc(*sc, nodes, ctx)
            }
            Expr::AppVar { f, args } => {
                let fr = self.atom(f, &env, ctx)?;
                let nodes = self.atoms(args, &env, ctx)?;
                self.konts.push(Kont::ApplyK { args: nodes });
                self.code = Code::Enter(fr);
                Ok(Step::cont(C_STEP))
            }
            Expr::Prim { op, args } => {
                let nodes = self.atoms(args, &env, ctx)?;
                if nodes.len() != op.arity() {
                    return Err(format!("{op:?} applied to {} args", nodes.len()));
                }
                let first = nodes[0];
                self.konts.push(Kont::PrimK {
                    op: *op,
                    nodes,
                    next: 1,
                });
                self.code = Code::Enter(first);
                Ok(Step::cont(C_STEP))
            }
            Expr::Let { rhss, body } => {
                for rhs in rhss {
                    let r = self.alloc_rhs(rhs, &env, ctx)?;
                    env.push(r);
                }
                self.code = Code::Eval(body.clone(), env);
                Ok(Step::cont(C_STEP))
            }
            Expr::Case { scrut, alts } => {
                self.konts.push(Kont::Case {
                    alts: alts.clone(),
                    env: env.clone(),
                });
                self.code = Code::Eval(scrut.clone(), env);
                Ok(Step::cont(C_STEP))
            }
            Expr::Par { spark, body } => {
                let r = self.atom(spark, &env, ctx)?;
                ctx.sparks.push(r);
                self.code = Code::Eval(body.clone(), env);
                Ok(Step::cont(C_PAR))
            }
            Expr::Seq { a, b } => {
                self.konts.push(Kont::Seq {
                    b: b.clone(),
                    env: env.clone(),
                });
                self.code = Code::Eval(a.clone(), env);
                Ok(Step::cont(C_STEP))
            }
            Expr::If { cond, then_, else_ } => {
                self.konts.push(Kont::Case {
                    alts: Alts::Bool {
                        tt: then_.clone(),
                        ff: else_.clone(),
                    },
                    env: env.clone(),
                });
                self.code = Code::Eval(cond.clone(), env);
                Ok(Step::cont(C_STEP))
            }
        }
    }

    fn enter_node(&mut self, r: NodeRef, ctx: &mut RunCtx<'_>) -> Result<Step, String> {
        let r = ctx.heap.resolve(r);
        match ctx.heap.claim_thunk(r, ctx.eager_blackhole) {
            Claim::Whnf => {
                self.code = Code::Return(r);
                Ok(Step::cont(C_STEP))
            }
            Claim::Busy => {
                // Stay in Enter(r): on wake, the node will be an Ind to
                // the value and entering it succeeds immediately.
                self.code = Code::Enter(r);
                Ok(Step {
                    base_cost: C_STEP,
                    outcome: Outcome::Blocked(r),
                })
            }
            Claim::Run { sc, args } => {
                self.konts.push(Kont::Update {
                    node: r,
                    start_cost: self.cost_total,
                });
                self.call_sc_claimed(sc, args.into_vec(), ctx)
            }
        }
    }

    /// Tail-call `sc` with evaluated-or-thunk argument nodes.
    fn call_sc(
        &mut self,
        sc: ScId,
        nodes: Vec<NodeRef>,
        ctx: &mut RunCtx<'_>,
    ) -> Result<Step, String> {
        self.call_sc_claimed(sc, nodes, ctx)
    }

    fn call_sc_claimed(
        &mut self,
        sc: ScId,
        nodes: Vec<NodeRef>,
        ctx: &mut RunCtx<'_>,
    ) -> Result<Step, String> {
        let scdef = ctx.program.sc(sc);
        if nodes.len() != scdef.arity {
            return Err(format!(
                "{} called with {} args (arity {})",
                scdef.name,
                nodes.len(),
                scdef.arity
            ));
        }
        match &scdef.body {
            ScBody::Expr(body) => {
                self.code = Code::Eval(body.clone(), nodes);
                Ok(Step::cont(C_CLAIM))
            }
            ScBody::Kernel(_) => {
                if nodes.is_empty() {
                    return self.run_kernel(sc, &[], ctx);
                }
                let first = nodes[0];
                self.konts.push(Kont::KernelK { sc, nodes, next: 1 });
                self.code = Code::Enter(first);
                Ok(Step::cont(C_CLAIM))
            }
        }
    }

    fn run_kernel(
        &mut self,
        sc: ScId,
        nodes: &[NodeRef],
        ctx: &mut RunCtx<'_>,
    ) -> Result<Step, String> {
        let kernel = match &ctx.program.sc(sc).body {
            ScBody::Kernel(k) => k.clone(),
            ScBody::Expr(_) => unreachable!("run_kernel on an IR body"),
        };
        // Kernels see fully resolved argument nodes.
        let resolved: Vec<NodeRef> = nodes.iter().map(|r| ctx.heap.resolve(*r)).collect();
        let alloc_before = ctx.heap.stats().allocated_words;
        let out = kernel(ctx.heap, &resolved);
        let real_alloc = ctx.heap.stats().allocated_words - alloc_before;
        ctx.heap.charge_transient(out.transient_words);
        // The Rust closure computed the result instantly; the thread
        // now pays the loop's virtual cost (and allocation) off in
        // pieces — see `Code::Kernel`.
        self.code = Code::Kernel {
            result: out.result,
            cost_left: out.cost.max(1),
            alloc_left: real_alloc + out.transient_words,
        };
        Ok(Step::cont(0))
    }

    fn return_node(&mut self, r: NodeRef, ctx: &mut RunCtx<'_>) -> Result<Step, String> {
        let Some(kont) = self.konts.pop() else {
            return Ok(Step {
                base_cost: C_STEP,
                outcome: Outcome::Finished(r),
            });
        };
        match kont {
            Kont::Case { alts, env } => self.select_alt(r, alts, env, ctx),
            Kont::Update { node, start_cost } => {
                let rep = ctx.heap.update(node, r);
                ctx.woken.extend(rep.woken);
                if rep.duplicate {
                    ctx.duplicate_work
                        .push(self.cost_total.saturating_sub(start_cost));
                }
                self.code = Code::Return(r);
                Ok(Step::cont(C_UPDATE))
            }
            Kont::Seq { b, env } => {
                self.code = Code::Eval(b, env);
                Ok(Step::cont(C_STEP))
            }
            Kont::PrimK { op, nodes, next } => {
                if next < nodes.len() {
                    let n = nodes[next];
                    self.konts.push(Kont::PrimK {
                        op,
                        nodes,
                        next: next + 1,
                    });
                    self.code = Code::Enter(n);
                    Ok(Step::cont(C_STEP))
                } else {
                    self.apply_prim_now(op, &nodes, ctx)
                }
            }
            Kont::KernelK { sc, nodes, next } => {
                if next < nodes.len() {
                    let n = nodes[next];
                    self.konts.push(Kont::KernelK {
                        sc,
                        nodes,
                        next: next + 1,
                    });
                    self.code = Code::Enter(n);
                    Ok(Step::cont(C_STEP))
                } else {
                    self.run_kernel(sc, &nodes, ctx)
                }
            }
            Kont::ApplyK { args } => self.apply_value(r, args, ctx),
            Kont::DeepK { root, mut pending } => {
                // The node just returned is in WHNF; queue its children.
                self.child_buf.clear();
                let resolved = ctx.heap.resolve(r);
                if let Some(v) = ctx.heap.whnf(resolved) {
                    v.push_children(&mut self.child_buf);
                }
                pending.extend(self.child_buf.iter().copied());
                match pending.pop() {
                    Some(next) => {
                        self.konts.push(Kont::DeepK { root, pending });
                        self.code = Code::Enter(next);
                        Ok(Step::cont(C_STEP))
                    }
                    None => {
                        self.code = Code::Return(root);
                        Ok(Step::cont(C_STEP))
                    }
                }
            }
        }
    }

    fn apply_prim_now(
        &mut self,
        op: PrimOp,
        nodes: &[NodeRef],
        ctx: &mut RunCtx<'_>,
    ) -> Result<Step, String> {
        if op == PrimOp::DeepSeq {
            // Switch to deep forcing of the (already WHNF) operand.
            let root = ctx.heap.resolve(nodes[0]);
            self.konts.push(Kont::DeepK {
                root,
                pending: Vec::new(),
            });
            self.code = Code::Return(root);
            return Ok(Step::cont(C_STEP));
        }
        let vals: Vec<&Value> = nodes
            .iter()
            .map(|r| {
                ctx.heap
                    .whnf(*r)
                    .ok_or_else(|| format!("{op:?}: operand {r} not in WHNF"))
            })
            .collect::<Result<_, _>>()?;
        let result = apply_prim(op, &vals).map_err(|e: PrimError| e.to_string())?;
        let node = ctx.alloc(Cell::Value(result));
        self.code = Code::Return(node);
        Ok(Step::cont(op.cost()))
    }

    fn apply_value(
        &mut self,
        f: NodeRef,
        args: Vec<NodeRef>,
        ctx: &mut RunCtx<'_>,
    ) -> Result<Step, String> {
        let f = ctx.heap.resolve(f);
        let (sc, mut have) = match ctx.heap.whnf(f) {
            Some(Value::Pap { sc, args }) => (*sc, args.to_vec()),
            Some(other) => return Err(format!("applying non-function {other:?}")),
            None => return Err(format!("applying unevaluated node {f}")),
        };
        have.extend(args);
        let arity = ctx.program.sc(sc).arity;
        match have.len().cmp(&arity) {
            std::cmp::Ordering::Less => {
                let node = ctx.alloc(Cell::Value(Value::Pap {
                    sc,
                    args: have.into(),
                }));
                self.code = Code::Return(node);
                Ok(Step::cont(C_STEP))
            }
            std::cmp::Ordering::Equal => self.call_sc(sc, have, ctx),
            std::cmp::Ordering::Greater => {
                // Saturate the sc with the first `arity` args, then
                // apply the result to the rest.
                let rest = have.split_off(arity);
                self.konts.push(Kont::ApplyK { args: rest });
                self.call_sc(sc, have, ctx)
            }
        }
    }

    fn select_alt(
        &mut self,
        r: NodeRef,
        alts: Alts,
        mut env: Env,
        ctx: &mut RunCtx<'_>,
    ) -> Result<Step, String> {
        let r = ctx.heap.resolve(r);
        let v = ctx
            .heap
            .whnf(r)
            .ok_or_else(|| format!("case scrutinee {r} not in WHNF"))?;
        match alts {
            Alts::List { nil, cons } => match v {
                Value::Nil => {
                    self.code = Code::Eval(nil, env);
                    Ok(Step::cont(C_STEP))
                }
                Value::Cons(h, t) => {
                    env.push(*h);
                    env.push(*t);
                    self.code = Code::Eval(cons, env);
                    Ok(Step::cont(C_STEP))
                }
                other => Err(format!("case-of-list on {other:?}")),
            },
            Alts::Bool { tt, ff } => match v {
                Value::Bool(true) => {
                    self.code = Code::Eval(tt, env);
                    Ok(Step::cont(C_STEP))
                }
                Value::Bool(false) => {
                    self.code = Code::Eval(ff, env);
                    Ok(Step::cont(C_STEP))
                }
                other => Err(format!("case-of-bool on {other:?}")),
            },
            Alts::Tuple { arity, body } => match v {
                Value::Tuple(fields) => {
                    if fields.len() != arity {
                        return Err(format!(
                            "case-of-tuple arity {arity} on {}-tuple",
                            fields.len()
                        ));
                    }
                    env.extend_from_slice(fields);
                    self.code = Code::Eval(body, env);
                    Ok(Step::cont(C_STEP))
                }
                other => Err(format!("case-of-tuple on {other:?}")),
            },
            Alts::Force(e) => {
                self.code = Code::Eval(e, env);
                Ok(Step::cont(C_STEP))
            }
        }
    }

    // ----- atoms & allocation -----

    fn atom(&mut self, a: &Atom, env: &Env, ctx: &mut RunCtx<'_>) -> Result<NodeRef, String> {
        match a {
            Atom::Var(i) => env
                .get(*i)
                .copied()
                .ok_or_else(|| format!("unbound variable slot {i} (env has {})", env.len())),
            Atom::Lit(l) => Ok(ctx.alloc(Cell::Value(l.to_value()))),
        }
    }

    fn atoms(
        &mut self,
        atoms: &[Atom],
        env: &Env,
        ctx: &mut RunCtx<'_>,
    ) -> Result<Vec<NodeRef>, String> {
        atoms.iter().map(|a| self.atom(a, env, ctx)).collect()
    }

    fn alloc_rhs(
        &mut self,
        rhs: &LetRhs,
        env: &Env,
        ctx: &mut RunCtx<'_>,
    ) -> Result<NodeRef, String> {
        Ok(match rhs {
            LetRhs::Thunk { sc, args } => {
                let nodes = self.atoms(args, env, ctx)?;
                ctx.alloc(Cell::Thunk {
                    sc: *sc,
                    args: nodes.into(),
                })
            }
            LetRhs::ThunkApp { f, args } => {
                // A dynamic-call thunk: suspended `$apply f args`,
                // implemented with the program's apply combinator.
                let apply = ctx
                    .program
                    .lookup(&crate::prelude::apply_name(args.len()))
                    .ok_or_else(|| {
                        format!(
                            "program lacks {} (register the prelude, or call ProgramBuilder::ensure_applies)",
                            crate::prelude::apply_name(args.len())
                        )
                    })?;
                let mut nodes = Vec::with_capacity(args.len() + 1);
                nodes.push(self.atom(f, env, ctx)?);
                for a in args {
                    nodes.push(self.atom(a, env, ctx)?);
                }
                ctx.alloc(Cell::Thunk {
                    sc: apply,
                    args: nodes.into(),
                })
            }
            LetRhs::Cons(h, t) => {
                let h = self.atom(h, env, ctx)?;
                let t = self.atom(t, env, ctx)?;
                ctx.alloc(Cell::Value(Value::Cons(h, t)))
            }
            LetRhs::Nil => ctx.alloc(Cell::Value(Value::Nil)),
            LetRhs::Tuple(fields) => {
                let nodes = self.atoms(fields, env, ctx)?;
                ctx.alloc(Cell::Value(Value::Tuple(nodes.into())))
            }
            LetRhs::Lit(l) => ctx.alloc(Cell::Value(l.to_value())),
            LetRhs::Pap { sc, args } => {
                let nodes = self.atoms(args, env, ctx)?;
                ctx.alloc(Cell::Value(Value::Pap {
                    sc: *sc,
                    args: nodes.into(),
                }))
            }
        })
    }
}

struct Step {
    base_cost: u64,
    outcome: Outcome,
}

impl Step {
    fn cont(base_cost: u64) -> Self {
        Step {
            base_cost,
            outcome: Outcome::Continue,
        }
    }
}

enum Outcome {
    Continue,
    Blocked(NodeRef),
    Finished(NodeRef),
}
