//! The core language: a lazy functional IR in A-normal form.
//!
//! Design notes:
//!
//! * **Atoms only in argument position.** Like STG, any non-trivial
//!   subexpression must be `let`-bound first, which allocates a thunk.
//!   Allocation — the input to the paper's GC model — is therefore
//!   explicit in the program text.
//! * **Environments are flat.** `Atom::Var(i)` indexes the current
//!   environment frame: a supercombinator's arguments followed by
//!   `let`/`case` bindings in order of introduction. The builder
//!   helpers in this module keep index management tolerable; the
//!   prelude and workloads document their frames.
//! * **`par` and `seq`** are the two GpH coordination constructs
//!   (§II.B): `par` records its first operand as a spark and continues
//!   with the second; `seq` forces its first operand to WHNF first.

use rph_heap::{ScId, Value};
use std::sync::Arc;

/// Shared expression handle. Expressions form static program trees,
/// shared freely by machines and continuations.
pub type E = Arc<Expr>;

/// Literals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lit {
    Int(i64),
    Double(f64),
    Bool(bool),
    Unit,
}

impl Lit {
    /// The heap value this literal denotes.
    pub fn to_value(self) -> Value {
        match self {
            Lit::Int(i) => Value::Int(i),
            Lit::Double(d) => Value::Double(d),
            Lit::Bool(b) => Value::Bool(b),
            Lit::Unit => Value::Unit,
        }
    }
}

/// An atom: a variable or a literal. The only things that may appear in
/// argument position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Atom {
    /// Environment slot (arguments first, then lets/case binders).
    Var(usize),
    /// Immediate literal (allocated as a value node when materialised).
    Lit(Lit),
}

/// Right-hand side of a `let` binding: what gets allocated.
#[derive(Debug, Clone, PartialEq)]
pub enum LetRhs {
    /// A thunk: the suspended saturated call `sc args`.
    Thunk { sc: ScId, args: Vec<Atom> },
    /// A thunk applying a *function value* (a `Pap`) to arguments —
    /// the higher-order counterpart of `Thunk`, needed by skeletons
    /// (`parMap f xs` suspends `f x`).
    ThunkApp { f: Atom, args: Vec<Atom> },
    /// An already-WHNF constructor cell.
    Cons(Atom, Atom),
    /// The empty list.
    Nil,
    /// A tuple.
    Tuple(Vec<Atom>),
    /// A boxed literal.
    Lit(Lit),
    /// A function value: `sc` partially applied to `args` (possibly
    /// none). How IR programs mention functions as data.
    Pap { sc: ScId, args: Vec<Atom> },
}

/// Case alternatives. The selected branch sees the environment extended
/// with the constructor fields (head then tail for `Cons`; components
/// in order for tuples; nothing for the rest).
#[derive(Debug, Clone, PartialEq)]
pub enum Alts {
    /// Match a list: `nil` branch, `cons` branch (env + [head, tail]).
    List { nil: E, cons: E },
    /// Match a boolean.
    Bool { tt: E, ff: E },
    /// Match a tuple of the given arity (env + components).
    Tuple { arity: usize, body: E },
    /// Don't inspect, just force to WHNF and continue (this is `seq`'s
    /// desugaring; the binder is *not* pushed).
    Force(E),
}

/// Core-language expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Return (and if needed, force) an atom.
    Atom(Atom),
    /// Saturated tail call of a supercombinator.
    App { sc: ScId, args: Vec<Atom> },
    /// Application of a function *value*: force `f` to WHNF (a `Pap`),
    /// then apply. Under-saturation builds a new `Pap`; exact
    /// saturation enters the supercombinator.
    AppVar { f: Atom, args: Vec<Atom> },
    /// Strict primitive application.
    Prim {
        op: crate::primop::PrimOp,
        args: Vec<Atom>,
    },
    /// Allocate the right-hand sides (in order, each extending the
    /// environment — later RHSs may refer to earlier ones), then
    /// evaluate the body.
    Let { rhss: Vec<LetRhs>, body: E },
    /// Force the scrutinee to WHNF, then select an alternative.
    Case { scrut: E, alts: Alts },
    /// GpH `par`: record `spark` in the spark pool, evaluate `body`.
    Par { spark: Atom, body: E },
    /// `seq a b`: force `a` to WHNF, then evaluate `b`.
    Seq { a: E, b: E },
    /// Conditional on an already-boolean atom's WHNF.
    If { cond: E, then_: E, else_: E },
}

// ---------------------------------------------------------------------
// Builder helpers: tiny combinators so programs read like the paper's
// Haskell rather than like raw AST dumps.
// ---------------------------------------------------------------------

/// `Atom::Var(i)` — the i-th environment slot.
pub fn v(i: usize) -> Atom {
    Atom::Var(i)
}

/// Integer literal atom.
pub fn int(i: i64) -> Atom {
    Atom::Lit(Lit::Int(i))
}

/// Double literal atom.
pub fn dbl(d: f64) -> Atom {
    Atom::Lit(Lit::Double(d))
}

/// Boolean literal atom.
pub fn boolean(b: bool) -> Atom {
    Atom::Lit(Lit::Bool(b))
}

/// Unit literal atom.
pub fn unit() -> Atom {
    Atom::Lit(Lit::Unit)
}

/// Return an atom.
pub fn atom(a: Atom) -> E {
    Arc::new(Expr::Atom(a))
}

/// Tail call.
pub fn app(sc: ScId, args: Vec<Atom>) -> E {
    Arc::new(Expr::App { sc, args })
}

/// Apply a function value.
pub fn app_var(f: Atom, args: Vec<Atom>) -> E {
    Arc::new(Expr::AppVar { f, args })
}

/// A suspended higher-order application binding.
pub fn thunk_app(f: Atom, args: Vec<Atom>) -> LetRhs {
    LetRhs::ThunkApp { f, args }
}

/// A function-value binding.
pub fn pap(sc: ScId, args: Vec<Atom>) -> LetRhs {
    LetRhs::Pap { sc, args }
}

/// Strict primitive.
pub fn prim(op: crate::primop::PrimOp, args: Vec<Atom>) -> E {
    Arc::new(Expr::Prim { op, args })
}

/// `let` block.
pub fn let_(rhss: Vec<LetRhs>, body: E) -> E {
    Arc::new(Expr::Let { rhss, body })
}

/// A single thunk binding.
pub fn thunk(sc: ScId, args: Vec<Atom>) -> LetRhs {
    LetRhs::Thunk { sc, args }
}

/// Case on a list.
pub fn case_list(scrut: E, nil: E, cons: E) -> E {
    Arc::new(Expr::Case {
        scrut,
        alts: Alts::List { nil, cons },
    })
}

/// Case on a bool.
pub fn case_bool(scrut: E, tt: E, ff: E) -> E {
    Arc::new(Expr::Case {
        scrut,
        alts: Alts::Bool { tt, ff },
    })
}

/// Case on a tuple.
pub fn case_tuple(scrut: E, arity: usize, body: E) -> E {
    Arc::new(Expr::Case {
        scrut,
        alts: Alts::Tuple { arity, body },
    })
}

/// GpH `par`.
pub fn par(spark: Atom, body: E) -> E {
    Arc::new(Expr::Par { spark, body })
}

/// `seq`.
pub fn seq(a: E, b: E) -> E {
    Arc::new(Expr::Seq { a, b })
}

/// `if`.
pub fn if_(cond: E, then_: E, else_: E) -> E {
    Arc::new(Expr::If { cond, then_, else_ })
}

impl Expr {
    /// Largest `Var` index mentioned (for builder sanity checks);
    /// `None` if the expression is closed.
    pub fn max_var(&self) -> Option<usize> {
        fn atom_max(a: &Atom) -> Option<usize> {
            match a {
                Atom::Var(i) => Some(*i),
                Atom::Lit(_) => None,
            }
        }
        fn rhs_max(r: &LetRhs) -> Option<usize> {
            match r {
                LetRhs::Thunk { args, .. } | LetRhs::Tuple(args) | LetRhs::Pap { args, .. } => {
                    args.iter().filter_map(atom_max).max()
                }
                LetRhs::ThunkApp { f, args } => {
                    atom_max(f).max(args.iter().filter_map(atom_max).max())
                }
                LetRhs::Cons(a, b) => atom_max(a).max(atom_max(b)),
                LetRhs::Nil | LetRhs::Lit(_) => None,
            }
        }
        match self {
            Expr::Atom(a) => atom_max(a),
            Expr::App { args, .. } | Expr::Prim { args, .. } => {
                args.iter().filter_map(atom_max).max()
            }
            Expr::AppVar { f, args } => atom_max(f).max(args.iter().filter_map(atom_max).max()),
            Expr::Let { rhss, body } => rhss.iter().filter_map(rhs_max).max().max(body.max_var()),
            Expr::Case { scrut, alts } => {
                let alt_max = match alts {
                    Alts::List { nil, cons } => nil.max_var().max(cons.max_var()),
                    Alts::Bool { tt, ff } => tt.max_var().max(ff.max_var()),
                    Alts::Tuple { body, .. } => body.max_var(),
                    Alts::Force(e) => e.max_var(),
                };
                scrut.max_var().max(alt_max)
            }
            Expr::Par { spark, body } => atom_max(spark).max(body.max_var()),
            Expr::Seq { a, b } => a.max_var().max(b.max_var()),
            Expr::If { cond, then_, else_ } => {
                cond.max_var().max(then_.max_var()).max(else_.max_var())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primop::PrimOp;

    #[test]
    fn literals_to_values() {
        assert_eq!(Lit::Int(3).to_value(), Value::Int(3));
        assert_eq!(Lit::Bool(true).to_value(), Value::Bool(true));
        assert_eq!(Lit::Unit.to_value(), Value::Unit);
    }

    #[test]
    fn builders_compose() {
        // let x = 1+2 in x  (shape check only)
        let e = let_(vec![thunk(ScId(0), vec![int(1), int(2)])], atom(v(0)));
        match &*e {
            Expr::Let { rhss, body } => {
                assert_eq!(rhss.len(), 1);
                assert_eq!(**body, Expr::Atom(Atom::Var(0)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn max_var_accounts_for_all_positions() {
        let e = case_list(
            atom(v(2)),
            prim(PrimOp::Add, vec![v(0), v(1)]),
            app(ScId(0), vec![v(4), int(1)]),
        );
        assert_eq!(e.max_var(), Some(4));
        assert_eq!(atom(int(1)).max_var(), None);
    }
}
