//! Tests for the explicit-state machine: semantics (against the
//! reference interpreter and Rust-computed oracles), laziness/sharing,
//! black-holing behaviour, spark collection, blocking and waking,
//! checkpointing, and GC-root reporting.

use crate::ir::*;
use crate::machine::{Machine, MachineStatus, RunCtx, StopReason};
use crate::prelude::{self, Prelude};
use crate::primop::PrimOp;
use crate::program::{KernelOut, Program, ProgramBuilder};
use crate::reference::{alloc_int_list, force_whnf, read_int_list, run_seq, run_seq_deep};
use rph_heap::gc::Collector;
use rph_heap::{AllocArea, Heap, NodeRef, Value};
use rph_trace::ThreadId;
use std::sync::Arc;

fn with_prelude() -> (Arc<Program>, Prelude) {
    let mut b = ProgramBuilder::new();
    let p = prelude::install(&mut b);
    (b.build(), p)
}

/// Drive one machine to completion (ignoring checkpoints), asserting no
/// blocking occurs.
fn drive(prog: &Program, heap: &mut Heap, m: &mut Machine) -> (NodeRef, u64) {
    let mut area = AllocArea::new(u64::MAX / 4, u64::MAX / 4);
    let mut total = 0;
    loop {
        let mut ctx = RunCtx::new(prog, heap, &mut area, true);
        let s = m.run(&mut ctx, 10_000);
        total += s.cost;
        match s.stop {
            StopReason::Finished(r) => return (r, total),
            StopReason::FuelExhausted | StopReason::Checkpoint | StopReason::Sparked => continue,
            other => panic!("unexpected stop: {other:?}"),
        }
    }
}

#[test]
fn machine_agrees_with_reference_on_prelude_pipelines() {
    let (prog, pre) = with_prelude();
    // For several (n, k): sum (concat (chunk k (map inc [1..n])))
    for (n, k) in [(0i64, 3i64), (1, 1), (10, 3), (25, 7), (100, 10)] {
        let build = |heap: &mut Heap| {
            let lo = heap.int(1);
            let hi = heap.int(n);
            let kk = heap.int(k);
            let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
            let f = heap.alloc_value(Value::Pap {
                sc: pre.inc,
                args: Box::new([]),
            });
            let mapped = heap.alloc_thunk(pre.map, vec![f, xs]);
            let chunks = heap.alloc_thunk(pre.chunk, vec![kk, mapped]);
            let cat = heap.alloc_thunk(pre.concat, vec![chunks]);
            heap.alloc_thunk(pre.sum, vec![cat])
        };
        let expect: i64 = (1..=n).map(|x| x + 1).sum();

        let mut h1 = Heap::new();
        let e1 = build(&mut h1);
        let r1 = force_whnf(&prog, &mut h1, e1).unwrap();
        assert_eq!(
            h1.expect_value(r1).expect_int(),
            expect,
            "reference n={n} k={k}"
        );

        let mut h2 = Heap::new();
        let e2 = build(&mut h2);
        let mut m = Machine::enter(ThreadId(0), e2);
        let (r2, _) = drive(&prog, &mut h2, &mut m);
        assert_eq!(
            h2.expect_value(r2).expect_int(),
            expect,
            "machine n={n} k={k}"
        );
    }
}

#[test]
fn take_drop_zipwith_replicate_against_rust_oracle() {
    let (prog, pre) = with_prelude();
    for n in [0i64, 1, 5, 20] {
        for k in [0i64, 1, 3, 25] {
            let mut heap = Heap::new();
            let xs_data: Vec<i64> = (10..10 + n).collect();
            let xs = alloc_int_list(&mut heap, &xs_data);
            let kk = heap.int(k);
            let taken = heap.alloc_thunk(pre.take, vec![kk, xs]);
            let (r, _) = run_seq_deep(&prog, &mut heap, taken);
            let expect: Vec<i64> = xs_data.iter().copied().take(k.max(0) as usize).collect();
            assert_eq!(read_int_list(&heap, r), expect, "take {k} {n}");

            let mut heap = Heap::new();
            let xs = alloc_int_list(&mut heap, &xs_data);
            let kk = heap.int(k);
            let dropped = heap.alloc_thunk(pre.drop, vec![kk, xs]);
            let (r, _) = run_seq_deep(&prog, &mut heap, dropped);
            let expect: Vec<i64> = xs_data.iter().copied().skip(k.max(0) as usize).collect();
            assert_eq!(read_int_list(&heap, r), expect, "drop {k} {n}");
        }
    }

    // zipWith add [1..5] [10,20,30] == [11,22,33]
    let (prog, pre) = with_prelude();
    let mut heap = Heap::new();
    let a = alloc_int_list(&mut heap, &[1, 2, 3, 4, 5]);
    let b = alloc_int_list(&mut heap, &[10, 20, 30]);
    let f = heap.alloc_value(Value::Pap {
        sc: pre.add,
        args: Box::new([]),
    });
    let z = heap.alloc_thunk(pre.zip_with, vec![f, a, b]);
    let (r, _) = run_seq_deep(&prog, &mut heap, z);
    assert_eq!(read_int_list(&heap, r), vec![11, 22, 33]);

    // replicate 4 7
    let mut heap = Heap::new();
    let n = heap.int(4);
    let x = heap.int(7);
    let rep = heap.alloc_thunk(pre.replicate, vec![n, x]);
    let (r, _) = run_seq_deep(&prog, &mut heap, rep);
    assert_eq!(read_int_list(&heap, r), vec![7, 7, 7, 7]);

    // length [1..100] == 100, last [1..100] == 100
    let mut heap = Heap::new();
    let lo = heap.int(1);
    let hi = heap.int(100);
    let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
    let len = heap.alloc_thunk(pre.length, vec![xs]);
    let (r, _) = run_seq(&prog, &mut heap, len);
    assert_eq!(heap.expect_value(r).expect_int(), 100);
}

#[test]
fn laziness_take_of_infinite_style_large_list() {
    // take 3 [1..10^9] must terminate quickly: only 3 cells forced.
    let (prog, pre) = with_prelude();
    let mut heap = Heap::new();
    let lo = heap.int(1);
    let hi = heap.int(1_000_000_000);
    let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
    let k = heap.int(3);
    let t = heap.alloc_thunk(pre.take, vec![k, xs]);
    let (r, cost) = run_seq_deep(&prog, &mut heap, t);
    assert_eq!(read_int_list(&heap, r), vec![1, 2, 3]);
    assert!(cost < 10_000, "laziness violated: cost {cost}");
}

#[test]
fn sharing_thunk_evaluated_once() {
    // let x = expensive in x + x — the kernel must run exactly once.
    use std::sync::atomic::{AtomicU32, Ordering};
    static CALLS: AtomicU32 = AtomicU32::new(0);
    let mut b = ProgramBuilder::new();
    let _pre = prelude::install(&mut b);
    let expensive = b.kernel("expensive", 0, |heap, _| {
        CALLS.fetch_add(1, Ordering::SeqCst);
        KernelOut {
            result: heap.alloc_value(Value::Int(21)),
            cost: 1000,
            transient_words: 0,
        }
    });
    let main = b.def(
        "main",
        0,
        let_(
            vec![thunk(expensive, vec![])],
            prim(PrimOp::Add, vec![v(0), v(0)]),
        ),
    );
    let prog = b.build();
    let mut heap = Heap::new();
    let e = heap.alloc_thunk(main, vec![]);
    let (r, _) = run_seq(&prog, &mut heap, e);
    assert_eq!(heap.expect_value(r).expect_int(), 42);
    assert_eq!(CALLS.load(Ordering::SeqCst), 1, "thunk not shared");
}

#[test]
fn par_collects_sparks() {
    let (prog, pre) = with_prelude();
    let mut heap = Heap::new();
    let xs = alloc_int_list(&mut heap, &[1, 2, 3, 4]);
    let e = heap.alloc_thunk(pre.spark_list, vec![xs]);
    let mut area = AllocArea::new(u64::MAX / 4, u64::MAX / 4);
    let mut m = Machine::enter(ThreadId(0), e);
    let mut sparks = Vec::new();
    loop {
        let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, true);
        let s = m.run(&mut ctx, u64::MAX / 4);
        sparks.extend(ctx.sparks);
        match s.stop {
            StopReason::Finished(r) => {
                assert_eq!(heap.expect_value(r), &Value::Unit);
                break;
            }
            StopReason::FuelExhausted | StopReason::Checkpoint | StopReason::Sparked => continue,
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(sparks.len(), 4, "one spark per element");
    // The sparked nodes are the list elements.
    let vals: Vec<i64> = sparks
        .iter()
        .map(|r| heap.expect_value(*r).expect_int())
        .collect();
    assert_eq!(vals, vec![1, 2, 3, 4]);
}

#[test]
fn blocking_and_waking_on_blackhole() {
    // Thread B forces a thunk already claimed (eagerly) by thread A;
    // B must block; after A updates, B wakes and finishes.
    let mut b = ProgramBuilder::new();
    let _pre = prelude::install(&mut b);
    let slow = b.kernel("slow", 0, |heap, _| KernelOut {
        result: heap.alloc_value(Value::Int(7)),
        cost: 1_000_000,
        transient_words: 0,
    });
    let prog = b.build();
    let mut heap = Heap::new();
    let shared = heap.alloc_thunk(slow, vec![]);

    let mut area = AllocArea::new(u64::MAX / 4, u64::MAX / 4);
    let ma = Machine::enter(ThreadId(1), shared);
    let mut mb = Machine::enter(ThreadId(2), shared);

    // A takes one small-fuel slice: claims the thunk (blackholes it) but
    // cannot finish the 1M-cost kernel... kernels are atomic, so instead
    // interleave: A runs zero-fuel after claim is not possible — use a
    // two-stage thunk: claim happens on entry; the kernel runs in the
    // same slice. To get a window, run A with fuel so small the slice
    // ends exactly after the claim? Kernel cost is charged in one step,
    // so instead drive B first against a manually-claimed thunk.
    heap.claim_thunk(shared, true); // simulate A mid-evaluation
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, true);
    let sb = mb.run(&mut ctx, 10_000);
    assert_eq!(sb.stop, StopReason::Blocked(shared));
    assert_eq!(mb.status(), MachineStatus::Blocked);
    heap.block_on(shared, mb.tid());

    // A finishes: compute the value and update.
    let result = heap.alloc_value(Value::Int(7));
    let rep = heap.update(shared, result);
    assert_eq!(rep.woken, vec![ThreadId(2)]);
    mb.wake();
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, true);
    let sb2 = mb.run(&mut ctx, 10_000);
    assert_eq!(sb2.stop, StopReason::Finished(heap.resolve(shared)));
    let _ = ma; // A's machine not needed further
}

#[test]
fn lazy_blackholing_allows_duplicate_work_eager_prevents_it() {
    // Two machines force the same thunk under LAZY black-holing: both
    // run; the second update is detected as duplicate.
    let (prog, pre) = with_prelude();
    let make = |heap: &mut Heap| {
        let lo = heap.int(1);
        let hi = heap.int(30);
        let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
        heap.alloc_thunk(pre.sum, vec![xs])
    };

    // Lazy: both enter Run.
    let mut heap = Heap::new();
    let shared = make(&mut heap);
    let mut area = AllocArea::new(u64::MAX / 4, u64::MAX / 4);
    let mut ma = Machine::enter(ThreadId(1), shared);
    let mut mb = Machine::enter(ThreadId(2), shared);
    // Interleave single small slices so both claim before either updates.
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, false);
    let _ = ma.run(&mut ctx, 10);
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, false);
    let _ = mb.run(&mut ctx, 10);
    assert_eq!(ma.status(), MachineStatus::Runnable);
    assert_eq!(mb.status(), MachineStatus::Runnable, "lazy BH: no blocking");
    // Drive both to completion; exactly one update is a duplicate.
    let mut dup = 0;
    for m in [&mut ma, &mut mb] {
        loop {
            let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, false);
            let s = m.run(&mut ctx, 100_000);
            dup += ctx.duplicate_work.len();
            match s.stop {
                StopReason::Finished(r) => {
                    assert_eq!(heap.expect_value(r).expect_int(), 465);
                    break;
                }
                StopReason::FuelExhausted | StopReason::Checkpoint | StopReason::Sparked => {
                    continue
                }
                other => panic!("{other:?}"),
            }
        }
    }
    assert!(
        dup >= 1,
        "duplicate evaluation must be detected under lazy BH"
    );

    // Eager: the second machine blocks instead.
    let mut heap = Heap::new();
    let shared = make(&mut heap);
    let mut ma = Machine::enter(ThreadId(1), shared);
    let mut mb = Machine::enter(ThreadId(2), shared);
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, true);
    let _ = ma.run(&mut ctx, 10);
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, true);
    let sb = mb.run(&mut ctx, 10_000);
    assert!(
        matches!(sb.stop, StopReason::Blocked(_)),
        "eager BH: second forcer blocks"
    );
}

#[test]
fn blackhole_update_frames_marks_entered_thunks() {
    let (prog, pre) = with_prelude();
    let mut heap = Heap::new();
    let lo = heap.int(1);
    let hi = heap.int(1000);
    let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
    let s = heap.alloc_thunk(pre.sum, vec![xs]);
    let mut area = AllocArea::new(u64::MAX / 4, u64::MAX / 4);
    let mut m = Machine::enter(ThreadId(0), s);
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, false);
    let _ = m.run(&mut ctx, 500);
    // Under lazy BH nothing is black-holed yet; the context switch scan
    // marks the update-frame thunks.
    let marked = m.blackhole_update_frames(&mut heap);
    assert!(marked >= 1, "expected update frames to blackhole");
    // A second forcer now blocks instead of duplicating.
    let mut mb = Machine::enter(ThreadId(1), s);
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, false);
    let sb = mb.run(&mut ctx, 10_000);
    assert!(matches!(sb.stop, StopReason::Blocked(_)));
}

#[test]
fn checkpoint_stops_slices() {
    let (prog, pre) = with_prelude();
    let mut heap = Heap::new();
    let lo = heap.int(1);
    let hi = heap.int(10_000);
    let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
    let s = heap.alloc_thunk(pre.sum, vec![xs]);
    // Tiny checkpoint quantum: slices must end on Checkpoint often.
    let mut area = AllocArea::new(u64::MAX / 4, 64);
    let mut m = Machine::enter(ThreadId(0), s);
    let mut checkpoints = 0;
    loop {
        let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, true);
        let sl = m.run(&mut ctx, u64::MAX / 4);
        match sl.stop {
            StopReason::Checkpoint => checkpoints += 1,
            StopReason::Finished(r) => {
                assert_eq!(heap.expect_value(r).expect_int(), 50_005_000);
                break;
            }
            other => panic!("{other:?}"),
        }
    }
    assert!(
        checkpoints > 10,
        "expected many checkpoints, got {checkpoints}"
    );
}

#[test]
fn machine_roots_keep_live_data_through_gc() {
    let (prog, pre) = with_prelude();
    let mut heap = Heap::new();
    let lo = heap.int(1);
    let hi = heap.int(500);
    let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
    let s = heap.alloc_thunk(pre.sum, vec![xs]);
    let mut area = AllocArea::new(u64::MAX / 4, u64::MAX / 4);
    let mut m = Machine::enter(ThreadId(0), s);
    // Run a while, then GC with the machine's roots, then finish.
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, true);
    let _ = m.run(&mut ctx, 2_000);
    let mut roots = Vec::new();
    m.push_roots(&mut roots);
    let mut gc = Collector::new();
    gc.collect(&mut heap, roots);
    let (r, _) = {
        let mut total = 0u64;
        loop {
            let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, true);
            let sl = m.run(&mut ctx, 100_000);
            total += sl.cost;
            match sl.stop {
                StopReason::Finished(r) => break (r, total),
                StopReason::FuelExhausted | StopReason::Checkpoint | StopReason::Sparked => {
                    continue
                }
                other => panic!("{other:?}"),
            }
        }
    };
    assert_eq!(heap.expect_value(r).expect_int(), 125_250);
}

#[test]
fn deep_force_normalises_nested_structures() {
    let (prog, pre) = with_prelude();
    let mut heap = Heap::new();
    // chunk 2 (map inc [1..6]) — nested lists, all thunks inside.
    let lo = heap.int(1);
    let hi = heap.int(6);
    let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
    let f = heap.alloc_value(Value::Pap {
        sc: pre.inc,
        args: Box::new([]),
    });
    let mapped = heap.alloc_thunk(pre.map, vec![f, xs]);
    let k = heap.int(2);
    let chunks = heap.alloc_thunk(pre.chunk, vec![k, mapped]);
    let (r, _) = run_seq_deep(&prog, &mut heap, chunks);
    // Everything must now be a value: walk and read.
    let mut outer = r;
    let mut collected = Vec::new();
    loop {
        match heap.expect_value(outer) {
            Value::Nil => break,
            Value::Cons(h, t) => {
                collected.push(read_int_list(&heap, *h));
                outer = *t;
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(collected, vec![vec![2, 3], vec![4, 5], vec![6, 7]]);
}

#[test]
fn over_application_of_pap() {
    // konst x = add (a curried function value), then apply to 2 args.
    // g = $apply1 addPap 5  ==> Pap(add,[5]); then AppVar g [4] => 9.
    let (prog, pre) = with_prelude();
    let mut b_heap = Heap::new();
    let heap = &mut b_heap;
    let addp = heap.alloc_value(Value::Pap {
        sc: pre.add,
        args: Box::new([]),
    });
    let five = heap.int(5);
    let four = heap.int(4);
    // Apply add to one arg -> Pap(add,[5]); then to another -> 9.
    let apply1 = prog.lookup("$apply1").unwrap();
    let partial = heap.alloc_thunk(apply1, vec![addp, five]);
    let full = heap.alloc_thunk(apply1, vec![partial, four]);
    let (r, _) = run_seq(&prog, heap, full);
    assert_eq!(heap.expect_value(r).expect_int(), 9);
}

#[test]
fn program_errors_are_reported_not_panicking() {
    let mut b = ProgramBuilder::new();
    let _pre = prelude::install(&mut b);
    let bad = b.def("bad", 0, prim(PrimOp::Div, vec![int(1), int(0)]));
    let prog = b.build();
    let mut heap = Heap::new();
    let e = heap.alloc_thunk(bad, vec![]);
    let mut area = AllocArea::new(u64::MAX / 4, u64::MAX / 4);
    let mut m = Machine::enter(ThreadId(0), e);
    let mut ctx = RunCtx::new(&prog, &mut heap, &mut area, true);
    let s = m.run(&mut ctx, 10_000);
    assert!(matches!(s.stop, StopReason::Error(_)), "{:?}", s.stop);
    assert_eq!(m.status(), MachineStatus::Finished);
}
