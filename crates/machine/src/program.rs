//! Supercombinator tables: the compiled program.

use crate::ir::E;
use rph_heap::{Heap, NodeRef, ScId};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of running a native kernel.
#[derive(Debug, Clone, Copy)]
pub struct KernelOut {
    /// The WHNF result (the kernel allocates it into the heap).
    pub result: NodeRef,
    /// Work units consumed, derived from the kernel's actual operation
    /// count (e.g. gcd iterations executed, multiply–adds performed).
    pub cost: u64,
    /// Transient allocation in words: the short-lived cons-cell churn
    /// the equivalent Haskell code would have produced. Drives GC
    /// *frequency* via the allocation area without materialising nodes
    /// (a copying collector never touches dead data).
    pub transient_words: u64,
}

/// A native kernel: Rust code standing in for a GHC-compiled inner
/// loop. Receives the heap and its (already WHNF-forced, indirection-
/// resolved) arguments.
pub type KernelFn = dyn Fn(&mut Heap, &[NodeRef]) -> KernelOut + Send + Sync;

/// Shared kernel handle.
pub type Kernel = Arc<KernelFn>;

/// A supercombinator body.
#[derive(Clone)]
pub enum ScBody {
    /// Core-language IR, interpreted lazily by the machine.
    Expr(E),
    /// A native kernel, strict in all arguments.
    Kernel(Kernel),
}

impl std::fmt::Debug for ScBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScBody::Expr(e) => write!(f, "Expr({e:?})"),
            ScBody::Kernel(_) => write!(f, "Kernel(<native>)"),
        }
    }
}

/// A top-level function.
#[derive(Debug, Clone)]
pub struct Sc {
    pub name: String,
    pub arity: usize,
    pub body: ScBody,
}

/// An immutable compiled program: the supercombinator table.
#[derive(Debug, Default)]
pub struct Program {
    scs: Vec<Sc>,
    by_name: HashMap<String, ScId>,
}

impl Program {
    /// Look up a supercombinator.
    #[inline]
    pub fn sc(&self, id: ScId) -> &Sc {
        &self.scs[id.index()]
    }

    /// Find a supercombinator by name.
    pub fn lookup(&self, name: &str) -> Option<ScId> {
        self.by_name.get(name).copied()
    }

    /// Number of supercombinators.
    pub fn len(&self) -> usize {
        self.scs.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.scs.is_empty()
    }

    /// Iterate over `(id, sc)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ScId, &Sc)> {
        self.scs
            .iter()
            .enumerate()
            .map(|(i, sc)| (ScId(i as u32), sc))
    }
}

/// Incremental program construction with forward references (recursive
/// and mutually recursive supercombinators declare first, define later).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    scs: Vec<(String, usize, Option<ScBody>)>,
    by_name: HashMap<String, ScId>,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a supercombinator, returning its id for use in bodies
    /// (including its own — recursion).
    pub fn declare(&mut self, name: &str, arity: usize) -> ScId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate supercombinator name {name:?}"
        );
        let id = ScId(self.scs.len() as u32);
        self.scs.push((name.to_string(), arity, None));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Attach an IR body to a declared supercombinator.
    pub fn define(&mut self, id: ScId, body: E) {
        let slot = &mut self.scs[id.index()];
        assert!(
            slot.2.is_none(),
            "supercombinator {:?} defined twice",
            slot.0
        );
        if let Some(max) = body.max_var() {
            // Environment slots beyond the arguments come from lets and
            // case binders; a static bound is not computable here, but a
            // body referring to vars with an empty environment of any
            // size would still need *some* argument when arity is zero.
            let _ = max; // full scoping is validated dynamically by the machine
        }
        slot.2 = Some(ScBody::Expr(body));
    }

    /// Declare-and-define in one step.
    pub fn def(&mut self, name: &str, arity: usize, body: E) -> ScId {
        let id = self.declare(name, arity);
        self.define(id, body);
        id
    }

    /// Declare-and-define a native kernel (strict in all arguments).
    pub fn kernel(
        &mut self,
        name: &str,
        arity: usize,
        f: impl Fn(&mut Heap, &[NodeRef]) -> KernelOut + Send + Sync + 'static,
    ) -> ScId {
        let id = self.declare(name, arity);
        self.scs[id.index()].2 = Some(ScBody::Kernel(Arc::new(f)));
        id
    }

    /// Finish. Panics if any declared supercombinator lacks a body —
    /// an incomplete program is a build bug, not a runtime condition.
    pub fn build(self) -> Arc<Program> {
        let scs = self
            .scs
            .into_iter()
            .map(|(name, arity, body)| Sc {
                body: body.unwrap_or_else(|| {
                    panic!("supercombinator {name:?} declared but never defined")
                }),
                name,
                arity,
            })
            .collect();
        Arc::new(Program {
            scs,
            by_name: self.by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{app, atom, v};
    use rph_heap::Value;

    #[test]
    fn forward_references_resolve() {
        let mut b = ProgramBuilder::new();
        let f = b.declare("f", 1);
        let g = b.def("g", 1, app(f, vec![v(0)]));
        b.define(f, atom(v(0)));
        let p = b.build();
        assert_eq!(p.len(), 2);
        assert_eq!(p.lookup("f"), Some(f));
        assert_eq!(p.sc(g).name, "g");
        assert_eq!(p.sc(f).arity, 1);
    }

    #[test]
    fn kernels_register() {
        let mut b = ProgramBuilder::new();
        let k = b.kernel("answer", 0, |heap, _args| KernelOut {
            result: heap.alloc_value(Value::Int(42)),
            cost: 1,
            transient_words: 0,
        });
        let p = b.build();
        assert!(matches!(p.sc(k).body, ScBody::Kernel(_)));
    }

    #[test]
    #[should_panic(expected = "declared but never defined")]
    fn undeclared_body_panics_at_build() {
        let mut b = ProgramBuilder::new();
        b.declare("f", 1);
        b.build();
    }

    #[test]
    #[should_panic(expected = "duplicate supercombinator")]
    fn duplicate_names_rejected() {
        let mut b = ProgramBuilder::new();
        b.declare("f", 1);
        b.declare("f", 2);
    }
}
