//! A big-step reference interpreter, a sequential driver, and graph↔Rust
//! conversion helpers.
//!
//! The reference interpreter implements the same call-by-need semantics
//! as [`crate::machine::Machine`] by direct recursion (no continuations,
//! no costs, always-eager black-holing so cyclic demand is caught as
//! `<<loop>>`). Property tests use it as the oracle the explicit-state
//! machine must agree with; workloads use [`run_seq`] as the sequential
//! baseline runner.

use crate::ir::{Alts, Atom, Expr, LetRhs, E};
use crate::machine::{Machine, RunCtx, StopReason};
use crate::primop::{apply_prim, PrimOp};
use crate::program::{Program, ScBody};
use rph_heap::heap::Claim;
use rph_heap::{AllocArea, Heap, NodeRef, ScId, Value};
use rph_trace::ThreadId;

/// Errors from the reference interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum RefError {
    /// Demanded a value under evaluation: `<<loop>>`.
    Loop(NodeRef),
    /// Any other program error (mirrors the machine's `Error`).
    Bad(String),
}

impl std::fmt::Display for RefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefError::Loop(r) => write!(f, "<<loop>> at {r}"),
            RefError::Bad(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RefError {}

/// Force `node` to WHNF by direct recursion (call-by-need: thunks are
/// updated in place, sharing preserved).
pub fn force_whnf(program: &Program, heap: &mut Heap, node: NodeRef) -> Result<NodeRef, RefError> {
    let r = heap.resolve(node);
    match heap.claim_thunk(r, true) {
        Claim::Whnf => Ok(r),
        Claim::Busy => Err(RefError::Loop(r)),
        Claim::Run { sc, args } => {
            let result = call(program, heap, sc, args.into_vec())?;
            heap.update(r, result);
            Ok(heap.resolve(result))
        }
    }
}

/// Force `node` to full normal form.
pub fn force_deep(program: &Program, heap: &mut Heap, node: NodeRef) -> Result<NodeRef, RefError> {
    let r = force_whnf(program, heap, node)?;
    let mut kids = Vec::new();
    if let Some(value) = heap.whnf(r) {
        value.push_children(&mut kids);
    }
    for k in kids {
        force_deep(program, heap, k)?;
    }
    Ok(r)
}

fn call(
    program: &Program,
    heap: &mut Heap,
    sc: ScId,
    args: Vec<NodeRef>,
) -> Result<NodeRef, RefError> {
    let scdef = program.sc(sc);
    if args.len() != scdef.arity {
        return Err(RefError::Bad(format!(
            "{} called with {} args (arity {})",
            scdef.name,
            args.len(),
            scdef.arity
        )));
    }
    match &scdef.body {
        ScBody::Expr(body) => eval(program, heap, body, args),
        ScBody::Kernel(k) => {
            let k = k.clone();
            let resolved: Vec<NodeRef> = args
                .iter()
                .map(|a| force_whnf(program, heap, *a))
                .collect::<Result<_, _>>()?;
            Ok(k(heap, &resolved).result)
        }
    }
}

fn eval(
    program: &Program,
    heap: &mut Heap,
    e: &E,
    mut env: Vec<NodeRef>,
) -> Result<NodeRef, RefError> {
    match &**e {
        Expr::Atom(a) => {
            let r = atom(heap, a, &env)?;
            force_whnf(program, heap, r)
        }
        Expr::App { sc, args } => {
            let nodes = atoms(heap, args, &env)?;
            call(program, heap, *sc, nodes)
        }
        Expr::AppVar { f, args } => {
            let fr = atom(heap, f, &env)?;
            let nodes = atoms(heap, args, &env)?;
            apply_value(program, heap, fr, nodes)
        }
        Expr::Prim { op, args } => {
            let nodes = atoms(heap, args, &env)?;
            if *op == PrimOp::DeepSeq {
                return force_deep(program, heap, nodes[0]);
            }
            let forced: Vec<NodeRef> = nodes
                .into_iter()
                .map(|n| force_whnf(program, heap, n))
                .collect::<Result<_, _>>()?;
            let vals: Vec<&Value> = forced
                .iter()
                .map(|r| heap.whnf(*r).expect("just forced"))
                .collect();
            let out = apply_prim(*op, &vals).map_err(|e| RefError::Bad(e.to_string()))?;
            Ok(heap.alloc_value(out))
        }
        Expr::Let { rhss, body } => {
            for rhs in rhss {
                let r = alloc_rhs(program, heap, rhs, &env)?;
                env.push(r);
            }
            eval(program, heap, body, env)
        }
        Expr::Case { scrut, alts } => {
            let s = eval(program, heap, scrut, env.clone())?;
            let v = heap
                .whnf(s)
                .cloned()
                .ok_or_else(|| RefError::Bad("case: not WHNF".into()))?;
            match alts {
                Alts::List { nil, cons } => match v {
                    Value::Nil => eval(program, heap, nil, env),
                    Value::Cons(h, t) => {
                        env.push(h);
                        env.push(t);
                        eval(program, heap, cons, env)
                    }
                    other => Err(RefError::Bad(format!("case-of-list on {other:?}"))),
                },
                Alts::Bool { tt, ff } => match v {
                    Value::Bool(true) => eval(program, heap, tt, env),
                    Value::Bool(false) => eval(program, heap, ff, env),
                    other => Err(RefError::Bad(format!("case-of-bool on {other:?}"))),
                },
                Alts::Tuple { arity, body } => match v {
                    Value::Tuple(fields) if fields.len() == *arity => {
                        env.extend_from_slice(&fields);
                        eval(program, heap, body, env)
                    }
                    other => Err(RefError::Bad(format!("case-of-tuple on {other:?}"))),
                },
                Alts::Force(k) => eval(program, heap, k, env),
            }
        }
        // The reference interpreter is sequential: `par` is a no-op on
        // its spark (the GpH semantics — sparks are only *hints*).
        Expr::Par { body, .. } => eval(program, heap, body, env),
        Expr::Seq { a, b } => {
            eval(program, heap, a, env.clone())?;
            eval(program, heap, b, env)
        }
        Expr::If { cond, then_, else_ } => {
            let c = eval(program, heap, cond, env.clone())?;
            match heap.whnf(c) {
                Some(Value::Bool(true)) => eval(program, heap, then_, env),
                Some(Value::Bool(false)) => eval(program, heap, else_, env),
                other => Err(RefError::Bad(format!("if on {other:?}"))),
            }
        }
    }
}

fn apply_value(
    program: &Program,
    heap: &mut Heap,
    f: NodeRef,
    args: Vec<NodeRef>,
) -> Result<NodeRef, RefError> {
    let fw = force_whnf(program, heap, f)?;
    let (sc, mut have) = match heap.whnf(fw) {
        Some(Value::Pap { sc, args }) => (*sc, args.to_vec()),
        other => return Err(RefError::Bad(format!("applying non-function {other:?}"))),
    };
    have.extend(args);
    let arity = program.sc(sc).arity;
    match have.len().cmp(&arity) {
        std::cmp::Ordering::Less => Ok(heap.alloc_value(Value::Pap {
            sc,
            args: have.into(),
        })),
        std::cmp::Ordering::Equal => call(program, heap, sc, have),
        std::cmp::Ordering::Greater => {
            let rest = have.split_off(arity);
            let g = call(program, heap, sc, have)?;
            apply_value(program, heap, g, rest)
        }
    }
}

fn atom(heap: &mut Heap, a: &Atom, env: &[NodeRef]) -> Result<NodeRef, RefError> {
    match a {
        Atom::Var(i) => env
            .get(*i)
            .copied()
            .ok_or_else(|| RefError::Bad(format!("unbound slot {i}"))),
        Atom::Lit(l) => Ok(heap.alloc_value(l.to_value())),
    }
}

fn atoms(heap: &mut Heap, aa: &[Atom], env: &[NodeRef]) -> Result<Vec<NodeRef>, RefError> {
    aa.iter().map(|a| atom(heap, a, env)).collect()
}

fn alloc_rhs(
    program: &Program,
    heap: &mut Heap,
    rhs: &LetRhs,
    env: &[NodeRef],
) -> Result<NodeRef, RefError> {
    Ok(match rhs {
        LetRhs::Thunk { sc, args } => {
            let nodes = atoms(heap, args, env)?;
            heap.alloc_thunk(*sc, nodes)
        }
        LetRhs::ThunkApp { f, args } => {
            let apply = program
                .lookup(&crate::prelude::apply_name(args.len()))
                .ok_or_else(|| RefError::Bad("missing $apply".into()))?;
            let mut nodes = vec![atom(heap, f, env)?];
            for a in args {
                nodes.push(atom(heap, a, env)?);
            }
            heap.alloc_thunk(apply, nodes)
        }
        LetRhs::Cons(h, t) => {
            let h = atom(heap, h, env)?;
            let t = atom(heap, t, env)?;
            heap.alloc_value(Value::Cons(h, t))
        }
        LetRhs::Nil => heap.alloc_value(Value::Nil),
        LetRhs::Tuple(fs) => {
            let nodes = atoms(heap, fs, env)?;
            heap.alloc_value(Value::Tuple(nodes.into()))
        }
        LetRhs::Lit(l) => heap.alloc_value(l.to_value()),
        LetRhs::Pap { sc, args } => {
            let nodes = atoms(heap, args, env)?;
            heap.alloc_value(Value::Pap {
                sc: *sc,
                args: nodes.into(),
            })
        }
    })
}

// ---------------------------------------------------------------------
// Sequential driver (baseline runner) and conversion helpers.
// ---------------------------------------------------------------------

/// Run the explicit-state machine to completion on a single capability
/// with an effectively infinite allocation area (no GC, no scheduling):
/// the sequential baseline. Returns the WHNF result node and the total
/// cost in work units.
///
/// # Panics
/// Panics on program errors and on deadlock (a single thread blocking
/// on its own black hole is `<<loop>>`).
pub fn run_seq(program: &Program, heap: &mut Heap, entry: NodeRef) -> (NodeRef, u64) {
    let mut area = AllocArea::new(u64::MAX / 4, u64::MAX / 4);
    let mut m = Machine::enter(ThreadId(0), entry);
    let mut total = 0u64;
    loop {
        let mut ctx = RunCtx::new(program, heap, &mut area, true);
        let slice = m.run(&mut ctx, u64::MAX / 4);
        total += slice.cost;
        match slice.stop {
            StopReason::Finished(r) => return (r, total),
            StopReason::Checkpoint | StopReason::FuelExhausted | StopReason::Sparked => continue,
            StopReason::Blocked(r) => panic!("sequential run blocked: <<loop>> at {r}"),
            StopReason::Error(e) => panic!("program error: {e}"),
        }
    }
}

/// Like [`run_seq`] but forcing the result to full normal form.
pub fn run_seq_deep(program: &Program, heap: &mut Heap, entry: NodeRef) -> (NodeRef, u64) {
    let mut area = AllocArea::new(u64::MAX / 4, u64::MAX / 4);
    let mut m = Machine::enter_deep(ThreadId(0), entry);
    let mut total = 0u64;
    loop {
        let mut ctx = RunCtx::new(program, heap, &mut area, true);
        let slice = m.run(&mut ctx, u64::MAX / 4);
        total += slice.cost;
        match slice.stop {
            StopReason::Finished(r) => return (r, total),
            StopReason::Checkpoint | StopReason::FuelExhausted | StopReason::Sparked => continue,
            StopReason::Blocked(r) => panic!("sequential run blocked: <<loop>> at {r}"),
            StopReason::Error(e) => panic!("program error: {e}"),
        }
    }
}

/// Allocate a Haskell-style list of ints.
pub fn alloc_int_list(heap: &mut Heap, xs: &[i64]) -> NodeRef {
    let mut tail = heap.alloc_value(Value::Nil);
    for &x in xs.iter().rev() {
        let h = heap.int(x);
        tail = heap.alloc_value(Value::Cons(h, tail));
    }
    tail
}

/// Read a fully evaluated int list back into Rust.
///
/// # Panics
/// Panics if the spine or any element is unevaluated.
pub fn read_int_list(heap: &Heap, mut r: NodeRef) -> Vec<i64> {
    let mut out = Vec::new();
    loop {
        match heap.expect_value(r) {
            Value::Nil => return out,
            Value::Cons(h, t) => {
                out.push(heap.expect_value(*h).expect_int());
                r = *t;
            }
            other => panic!("not a list: {other:?}"),
        }
    }
}

/// Read a fully evaluated list of `DArray`s back into Rust.
pub fn read_darray_list(heap: &Heap, mut r: NodeRef) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    loop {
        match heap.expect_value(r) {
            Value::Nil => return out,
            Value::Cons(h, t) => {
                out.push(heap.expect_value(*h).expect_darray().to_vec());
                r = *t;
            }
            other => panic!("not a list: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;
    use crate::prelude;
    use crate::program::ProgramBuilder;

    fn with_prelude() -> (std::sync::Arc<Program>, prelude::Prelude) {
        let mut b = ProgramBuilder::new();
        let p = prelude::install(&mut b);
        (b.build(), p)
    }

    #[test]
    fn reference_evaluates_enum_and_sum() {
        let (prog, pre) = with_prelude();
        let mut heap = Heap::new();
        let lo = heap.int(1);
        let hi = heap.int(100);
        let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
        let s = heap.alloc_thunk(pre.sum, vec![xs]);
        let r = force_whnf(&prog, &mut heap, s).unwrap();
        assert_eq!(heap.expect_value(r).expect_int(), 5050);
    }

    #[test]
    fn reference_detects_loop() {
        // Tie a genuinely cyclic demand: a forces b forces a.
        // loopy x = x + 1
        let mut b = ProgramBuilder::new();
        let _pre = prelude::install(&mut b);
        let f = b.declare("loopy", 1);
        b.define(f, prim(PrimOp::Add, vec![v(0), int(1)]));
        let prog = b.build();
        let mut heap = Heap::new();
        let placeholder = heap.int(0);
        let a_id = heap.alloc_thunk(f, vec![placeholder]);
        let b_id = heap.alloc_thunk(f, vec![a_id]);
        let a2 = heap.alloc_thunk(f, vec![b_id]);
        // Redirect a to a2 via an update: now a → a2 → b → a.
        heap.claim_thunk(a_id, true);
        heap.update(a_id, a2);
        let err = force_whnf(&prog, &mut heap, b_id).unwrap_err();
        assert!(matches!(err, RefError::Loop(_)));
    }

    #[test]
    fn run_seq_matches_reference() {
        let (prog, pre) = with_prelude();
        // sum (map inc [1..50]) both ways.
        let build = |heap: &mut Heap| {
            let lo = heap.int(1);
            let hi = heap.int(50);
            let xs = heap.alloc_thunk(pre.enum_from_to, vec![lo, hi]);
            let f = heap.alloc_value(Value::Pap {
                sc: pre.inc,
                args: Box::new([]),
            });
            let mapped = heap.alloc_thunk(pre.map, vec![f, xs]);
            heap.alloc_thunk(pre.sum, vec![mapped])
        };
        let mut h1 = Heap::new();
        let e1 = build(&mut h1);
        let r1 = force_whnf(&prog, &mut h1, e1).unwrap();
        let expect = (1..=50).map(|x| x + 1).sum::<i64>();
        assert_eq!(h1.expect_value(r1).expect_int(), expect);

        let mut h2 = Heap::new();
        let e2 = build(&mut h2);
        let (r2, cost) = run_seq(&prog, &mut h2, e2);
        assert_eq!(h2.expect_value(r2).expect_int(), expect);
        assert!(cost > 0);
    }

    #[test]
    fn list_roundtrip() {
        let mut heap = Heap::new();
        let xs = alloc_int_list(&mut heap, &[3, 1, 4, 1, 5]);
        assert_eq!(read_int_list(&heap, xs), vec![3, 1, 4, 1, 5]);
    }
}
