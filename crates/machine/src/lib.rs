//! # rph-machine — the lazy abstract machine (the "GHC stand-in")
//!
//! Both Haskell dialects in the paper execute on GHC's STG machine: a
//! graph reducer that enters closures, pushes update frames, and reaches
//! safepoints at allocation checkpoints. The reproduction needs exactly
//! that shape — an evaluator whose state is *explicit data*, so the
//! discrete-event simulator can suspend a thread at a checkpoint, block
//! it on a black hole, and resume it later, the way GHC's scheduler
//! suspends TSOs.
//!
//! The pieces:
//!
//! * [`ir`] — a small lazy functional core language in A-normal form:
//!   arguments are atoms, every thunk is allocated by an explicit
//!   `let`, `case` forces to WHNF, `par`/`seq` are the GpH coordination
//!   primitives. This mirrors GHC's STG language, and makes allocation
//!   — the driver of the paper's GC phenomena — syntactically visible.
//! * [`program`] — supercombinator table. A supercombinator body is
//!   either core-language IR or a native *kernel* (a Rust function that
//!   computes an inner loop such as Euler's totient or a matrix block
//!   product, charging its true cost and allocation). Kernels model
//!   GHC-compiled arithmetic loops: real results, real operation counts,
//!   no interpretive overhead in the simulator's hot paths.
//! * [`primop`] — strict primitive operations (arithmetic, comparison,
//!   list/tuple probes, `deepseq`).
//! * [`machine`] — the evaluator: explicit code/environment/continuation
//!   state, cost and allocation accounting per slice, eager or lazy
//!   black-holing (lazy black-holing walks the update frames at context
//!   switch, exactly like GHC — §IV.A.3 of the paper), spark collection
//!   for `par`.
//! * [`reference`] — an independent big-step interpreter used by
//!   property tests as the semantic oracle for the machine.
//! * [`prelude`] — list functions (`map`, `foldl`, `sum`, `enumFromTo`,
//!   `splitAtN`, …) written in the core language, shared by workloads.

pub mod ir;
pub mod machine;
#[cfg(test)]
mod machine_tests;
pub mod prelude;
pub mod primop;
pub mod program;
pub mod reference;

pub use ir::{Alts, Atom, Expr, LetRhs, Lit, E};
pub use machine::{Machine, MachineStatus, RunCtx, Slice, StopReason};
pub use primop::PrimOp;
pub use program::{Kernel, KernelOut, Program, ProgramBuilder, Sc, ScBody};
pub use rph_heap::{Heap, NodeRef, ScId, Value};
