//! The standard prelude: list functions written in the core language.
//!
//! These mirror the Haskell functions the paper's programs are built
//! from (`map`, `foldl'`, `sum`, `splitIntoN`-style chunking, …), so
//! workloads read like their Haskell originals and exercise the lazy
//! machinery (thunks, updates, sharing) rather than bypassing it.
//!
//! Each definition documents its environment frame: a supercombinator
//! body starts with its arguments in slots `0..arity`; `let` and `case`
//! binders extend the frame in order of introduction.

use crate::ir::*;
use crate::primop::PrimOp;
use crate::program::ProgramBuilder;
use rph_heap::ScId;

/// Name of the n-ary dynamic apply combinator (`$apply1`…): the
/// supercombinator behind [`LetRhs::ThunkApp`].
pub fn apply_name(n: usize) -> String {
    format!("$apply{n}")
}

/// Identifiers of the installed prelude functions.
#[derive(Debug, Clone, Copy)]
pub struct Prelude {
    /// `$apply1..$apply4`: apply a function value to 1–4 arguments.
    pub apply: [ScId; 4],
    /// `inc x = x + 1`
    pub inc: ScId,
    /// `dec x = x - 1`
    pub dec: ScId,
    /// `add a b = a + b`
    pub add: ScId,
    /// `enumFromTo lo hi = [lo..hi]` (lazy)
    pub enum_from_to: ScId,
    /// `map f xs`
    pub map: ScId,
    /// `foldl' f z xs` (strict accumulator)
    pub foldl: ScId,
    /// `sum xs = foldl' (+) 0 xs`
    pub sum: ScId,
    /// `length xs`
    pub length: ScId,
    /// `lengthAcc n xs`
    pub length_acc: ScId,
    /// `append xs ys`
    pub append: ScId,
    /// `take n xs`
    pub take: ScId,
    /// `drop n xs`
    pub drop: ScId,
    /// `chunk k xs` — split into sublists of `k` (the paper's
    /// "variants of splitting the input into sublists")
    pub chunk: ScId,
    /// `zipWith f xs ys`
    pub zip_with: ScId,
    /// `replicate n x`
    pub replicate: ScId,
    /// `concat xss`
    pub concat: ScId,
    /// `last xs` (partial: ⊥ on [])
    pub last: ScId,
    /// `filter p xs`
    pub filter: ScId,
    /// `reverse xs` (strict accumulator)
    pub reverse: ScId,
    /// `elem x xs`
    pub elem: ScId,
    /// `maximum xs` (partial: ⊥ on [])
    pub maximum: ScId,
    /// `sparkList xs`: spark every element (WHNF), return `()` —
    /// the engine of `parList rwhnf`.
    pub spark_list: ScId,
    /// `sparkListDeep xs`: spark `deepseq` of every element, return
    /// `()` — the engine of `parList rnf`.
    pub spark_list_deep: ScId,
    /// `deepSeqSc x = deepseq x` (forces to NF, returns x)
    pub deep_seq: ScId,
}

/// Install the prelude into a program under construction.
pub fn install(b: &mut ProgramBuilder) -> Prelude {
    // --- dynamic apply combinators -----------------------------------
    // $applyN f a1..aN = f a1..aN          frame: [f, a1..aN]
    let apply = [1usize, 2, 3, 4].map(|n| {
        b.def(
            &apply_name(n),
            n + 1,
            app_var(v(0), (1..=n).map(v).collect()),
        )
    });

    // inc x = x + 1                         frame: [x]
    let inc = b.def("inc", 1, prim(PrimOp::Add, vec![v(0), int(1)]));
    // dec x = x - 1
    let dec = b.def("dec", 1, prim(PrimOp::Sub, vec![v(0), int(1)]));
    // add a b = a + b
    let add = b.def("add", 2, prim(PrimOp::Add, vec![v(0), v(1)]));

    // enumFromTo lo hi                      frame: [lo, hi]
    //   | lo > hi   = []
    //   | otherwise = lo : enumFromTo (lo+1) hi
    let enum_from_to = b.declare("enumFromTo", 2);
    b.define(
        enum_from_to,
        if_(
            prim(PrimOp::Gt, vec![v(0), v(1)]),
            let_(vec![LetRhs::Nil], atom(v(2))),
            let_(
                vec![
                    thunk(inc, vec![v(0)]),                // [2] lo+1
                    thunk(enum_from_to, vec![v(2), v(1)]), // [3] tail
                    LetRhs::Cons(v(0), v(3)),              // [4]
                ],
                atom(v(4)),
            ),
        ),
    );

    // map f xs                              frame: [f, xs]
    let map = b.declare("map", 2);
    b.define(
        map,
        case_list(
            atom(v(1)),
            let_(vec![LetRhs::Nil], atom(v(2))),
            // cons: frame [f, xs, y, ys]
            let_(
                vec![
                    thunk_app(v(0), vec![v(2)]),  // [4] f y
                    thunk(map, vec![v(0), v(3)]), // [5] map f ys
                    LetRhs::Cons(v(4), v(5)),     // [6]
                ],
                atom(v(6)),
            ),
        ),
    );

    // foldl' f z xs                         frame: [f, z, xs]
    let foldl = b.declare("foldl'", 3);
    b.define(
        foldl,
        case_list(
            atom(v(2)),
            atom(v(1)),
            // cons: frame [f, z, xs, y, ys]
            let_(
                vec![thunk_app(v(0), vec![v(1), v(3)])], // [5] f z y
                seq(atom(v(5)), app(foldl, vec![v(0), v(5), v(4)])),
            ),
        ),
    );

    // sum xs = foldl' add 0 xs              frame: [xs]
    let sum = b.def(
        "sum",
        1,
        let_(
            vec![pap(add, vec![])], // [1] the (+) function value
            app(foldl, vec![v(1), int(0), v(0)]),
        ),
    );

    // lengthAcc n xs                        frame: [n, xs]
    let length_acc = b.declare("lengthAcc", 2);
    b.define(
        length_acc,
        case_list(
            atom(v(1)),
            atom(v(0)),
            // cons: frame [n, xs, y, ys]
            let_(
                vec![thunk(inc, vec![v(0)])], // [4] n+1
                seq(atom(v(4)), app(length_acc, vec![v(4), v(3)])),
            ),
        ),
    );
    // length xs = lengthAcc 0 xs
    let length = b.def("length", 1, app(length_acc, vec![int(0), v(0)]));

    // append xs ys                          frame: [xs, ys]
    let append = b.declare("append", 2);
    b.define(
        append,
        case_list(
            atom(v(0)),
            atom(v(1)),
            // cons: frame [xs, ys, h, t]
            let_(
                vec![
                    thunk(append, vec![v(3), v(1)]), // [4]
                    LetRhs::Cons(v(2), v(4)),        // [5]
                ],
                atom(v(5)),
            ),
        ),
    );

    // take n xs                             frame: [n, xs]
    let take = b.declare("take", 2);
    b.define(
        take,
        if_(
            prim(PrimOp::Le, vec![v(0), int(0)]),
            let_(vec![LetRhs::Nil], atom(v(2))),
            case_list(
                atom(v(1)),
                let_(vec![LetRhs::Nil], atom(v(2))),
                // cons: frame [n, xs, h, t]
                let_(
                    vec![
                        thunk(dec, vec![v(0)]),        // [4] n-1
                        thunk(take, vec![v(4), v(3)]), // [5]
                        LetRhs::Cons(v(2), v(5)),      // [6]
                    ],
                    atom(v(6)),
                ),
            ),
        ),
    );

    // drop n xs                             frame: [n, xs]
    let drop = b.declare("drop", 2);
    b.define(
        drop,
        if_(
            prim(PrimOp::Le, vec![v(0), int(0)]),
            atom(v(1)),
            case_list(
                atom(v(1)),
                let_(vec![LetRhs::Nil], atom(v(2))),
                // cons: frame [n, xs, h, t]
                let_(
                    vec![thunk(dec, vec![v(0)])], // [4] n-1
                    app(drop, vec![v(4), v(3)]),
                ),
            ),
        ),
    );

    // chunk k xs                            frame: [k, xs]
    //   chunk k [] = []
    //   chunk k xs = take k xs : chunk k (drop k xs)
    let chunk = b.declare("chunk", 2);
    b.define(
        chunk,
        case_list(
            atom(v(1)),
            let_(vec![LetRhs::Nil], atom(v(2))),
            // cons: frame [k, xs, h, t] — xs itself is still v(1)
            let_(
                vec![
                    thunk(take, vec![v(0), v(1)]),  // [4] take k xs
                    thunk(drop, vec![v(0), v(1)]),  // [5] drop k xs
                    thunk(chunk, vec![v(0), v(5)]), // [6] chunk k rest
                    LetRhs::Cons(v(4), v(6)),       // [7]
                ],
                atom(v(7)),
            ),
        ),
    );

    // zipWith f xs ys                       frame: [f, xs, ys]
    let zip_with = b.declare("zipWith", 3);
    b.define(
        zip_with,
        case_list(
            atom(v(1)),
            let_(vec![LetRhs::Nil], atom(v(3))),
            // cons: frame [f, xs, ys, x, xs']
            case_list(
                atom(v(2)),
                let_(vec![LetRhs::Nil], atom(v(5))),
                // cons: frame [f, xs, ys, x, xs', y, ys']
                let_(
                    vec![
                        thunk_app(v(0), vec![v(3), v(5)]),       // [7] f x y
                        thunk(zip_with, vec![v(0), v(4), v(6)]), // [8]
                        LetRhs::Cons(v(7), v(8)),                // [9]
                    ],
                    atom(v(9)),
                ),
            ),
        ),
    );

    // replicate n x                         frame: [n, x]
    let replicate = b.declare("replicate", 2);
    b.define(
        replicate,
        if_(
            prim(PrimOp::Le, vec![v(0), int(0)]),
            let_(vec![LetRhs::Nil], atom(v(2))),
            let_(
                vec![
                    thunk(dec, vec![v(0)]),             // [2]
                    thunk(replicate, vec![v(2), v(1)]), // [3]
                    LetRhs::Cons(v(1), v(3)),           // [4]
                ],
                atom(v(4)),
            ),
        ),
    );

    // concat xss                            frame: [xss]
    let concat = b.declare("concat", 1);
    b.define(
        concat,
        case_list(
            atom(v(0)),
            let_(vec![LetRhs::Nil], atom(v(1))),
            // cons: frame [xss, ys, yss]
            let_(
                vec![thunk(concat, vec![v(2)])], // [3]
                app(append, vec![v(1), v(3)]),
            ),
        ),
    );

    // filter p xs                          frame: [p, xs]
    let filter = b.declare("filter", 2);
    b.define(
        filter,
        case_list(
            atom(v(1)),
            let_(vec![LetRhs::Nil], atom(v(2))),
            // cons: frame [p, xs, y, ys]
            let_(
                vec![thunk(filter, vec![v(0), v(3)])], // [4] filter p ys
                if_(
                    app_var(v(0), vec![v(2)]),
                    let_(vec![LetRhs::Cons(v(2), v(4))], atom(v(5))),
                    atom(v(4)),
                ),
            ),
        ),
    );

    // reverseAcc acc xs                    frame: [acc, xs]
    let reverse_acc = b.declare("reverseAcc", 2);
    b.define(
        reverse_acc,
        case_list(
            atom(v(1)),
            atom(v(0)),
            // cons: frame [acc, xs, y, ys]
            let_(
                vec![LetRhs::Cons(v(2), v(0))], // [4] y : acc
                app(reverse_acc, vec![v(4), v(3)]),
            ),
        ),
    );
    // reverse xs = reverseAcc [] xs
    let reverse = b.def(
        "reverse",
        1,
        let_(vec![LetRhs::Nil], app(reverse_acc, vec![v(1), v(0)])),
    );

    // elem x xs                             frame: [x, xs]
    let elem = b.declare("elem", 2);
    b.define(
        elem,
        case_list(
            atom(v(1)),
            atom(boolean(false)),
            // cons: frame [x, xs, y, ys]
            if_(
                prim(PrimOp::Eq, vec![v(0), v(2)]),
                atom(boolean(true)),
                app(elem, vec![v(0), v(3)]),
            ),
        ),
    );

    // max2 a b = max a b
    let max2 = b.def("max2", 2, prim(PrimOp::Max, vec![v(0), v(1)]));
    // maximumAcc m xs                       frame: [m, xs]
    let maximum_acc = b.declare("maximumAcc", 2);
    b.define(
        maximum_acc,
        case_list(
            atom(v(1)),
            atom(v(0)),
            // cons: frame [m, xs, y, ys]
            let_(
                vec![thunk(max2, vec![v(0), v(2)])], // [4] max m y
                seq(atom(v(4)), app(maximum_acc, vec![v(4), v(3)])),
            ),
        ),
    );
    // maximum xs = case xs of (y:ys) -> maximumAcc y ys  (⊥ on [])
    let maximum = b.def(
        "maximum",
        1,
        case_list(
            atom(v(0)),
            prim(PrimOp::Div, vec![int(1), int(0)]), // ⊥ on []
            app(maximum_acc, vec![v(1), v(2)]),
        ),
    );

    // last xs                               frame: [xs]
    let last = b.declare("last", 1);
    b.define(
        last,
        case_list(
            atom(v(0)),
            // `last []` is ⊥ in Haskell; calling it is a program bug.
            prim(PrimOp::Div, vec![int(1), int(0)]),
            // cons: frame [xs, h, t]
            case_list(atom(v(2)), atom(v(1)), app(last, vec![v(2)])),
        ),
    );

    // sparkList xs: par each element to WHNF, return ()
    //                                       frame: [xs]
    let spark_list = b.declare("sparkList", 1);
    b.define(
        spark_list,
        case_list(
            atom(v(0)),
            atom(unit()),
            // cons: frame [xs, y, ys]
            par(v(1), app(spark_list, vec![v(2)])),
        ),
    );

    // deepSeqSc x = deepseq x (forces NF, returns x)
    let deep_seq = b.def("deepSeqSc", 1, prim(PrimOp::DeepSeq, vec![v(0)]));

    // sparkListDeep xs: par (deepseq y) for each element, return ().
    //                                       frame: [xs]
    let spark_list_deep = b.declare("sparkListDeep", 1);
    b.define(
        spark_list_deep,
        case_list(
            atom(v(0)),
            atom(unit()),
            // cons: frame [xs, y, ys]
            let_(
                vec![thunk(deep_seq, vec![v(1)])], // [3] deepseq y
                par(v(3), app(spark_list_deep, vec![v(2)])),
            ),
        ),
    );

    Prelude {
        apply,
        inc,
        dec,
        add,
        enum_from_to,
        map,
        foldl,
        sum,
        length,
        length_acc,
        append,
        take,
        drop,
        chunk,
        zip_with,
        replicate,
        concat,
        last,
        filter,
        reverse,
        elem,
        maximum,
        spark_list,
        spark_list_deep,
        deep_seq,
    }
}
