//! Strict primitive operations.
//!
//! Primops force all their operands to WHNF before applying (the
//! machine arranges that), compute natively, and cost a small constant
//! number of work units. Anything with data-dependent cost (totients,
//! block products, row relaxations) is a *kernel* supercombinator
//! instead, so its cost can be charged from its actual operation count.

use rph_heap::Value;

/// The primitive operations of the core language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    // Arithmetic (Int, or Double with promotion).
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Min,
    Max,
    Neg,
    // Comparison (yields Bool).
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    // Boolean.
    And,
    Or,
    Not,
    // Conversions.
    IntToDouble,
    // Dense arrays.
    DArrayLen,
    DArrayIndex,
    /// Force the operand to full normal form (transitively). Evaluated
    /// by the machine itself (it needs to drive evaluation of
    /// subthunks); listed here so strategies can mention it.
    DeepSeq,
}

/// Errors from primitive application.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimError {
    /// Operand count mismatch.
    Arity {
        op: PrimOp,
        expected: usize,
        got: usize,
    },
    /// Operand of the wrong shape.
    Type { op: PrimOp, got: String },
    /// Integer division by zero.
    DivideByZero,
    /// Array index out of bounds.
    Bounds { len: usize, index: i64 },
}

impl std::fmt::Display for PrimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrimError::Arity { op, expected, got } => {
                write!(f, "{op:?}: expected {expected} operands, got {got}")
            }
            PrimError::Type { op, got } => write!(f, "{op:?}: bad operand {got}"),
            PrimError::DivideByZero => write!(f, "integer division by zero"),
            PrimError::Bounds { len, index } => {
                write!(f, "array index {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for PrimError {}

impl PrimOp {
    /// Number of operands.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Neg
            | PrimOp::Not
            | PrimOp::IntToDouble
            | PrimOp::DArrayLen
            | PrimOp::DeepSeq => 1,
            _ => 2,
        }
    }

    /// Cost in work units (nominal ~1 ns machine operations; division
    /// is dearer, like the hardware it models).
    pub fn cost(self) -> u64 {
        match self {
            PrimOp::Div | PrimOp::Mod => 20,
            PrimOp::DArrayIndex => 2,
            _ => 1,
        }
    }
}

fn type_err(op: PrimOp, v: &Value) -> PrimError {
    PrimError::Type {
        op,
        got: format!("{v:?}"),
    }
}

/// Apply `op` to WHNF operands. `DeepSeq` is *not* handled here (the
/// machine interprets it); calling it is a program bug.
pub fn apply_prim(op: PrimOp, args: &[&Value]) -> Result<Value, PrimError> {
    if args.len() != op.arity() {
        return Err(PrimError::Arity {
            op,
            expected: op.arity(),
            got: args.len(),
        });
    }
    use PrimOp::*;
    use Value::*;
    let r = match (op, args) {
        (Add, [Int(a), Int(b)]) => Int(a.wrapping_add(*b)),
        (Sub, [Int(a), Int(b)]) => Int(a.wrapping_sub(*b)),
        (Mul, [Int(a), Int(b)]) => Int(a.wrapping_mul(*b)),
        (Div, [Int(_), Int(0)]) => return Err(PrimError::DivideByZero),
        (Div, [Int(a), Int(b)]) => Int(a.div_euclid(*b)),
        (Mod, [Int(_), Int(0)]) => return Err(PrimError::DivideByZero),
        (Mod, [Int(a), Int(b)]) => Int(a.rem_euclid(*b)),
        (Min, [Int(a), Int(b)]) => Int(*a.min(b)),
        (Max, [Int(a), Int(b)]) => Int(*a.max(b)),
        (Neg, [Int(a)]) => Int(-a),

        (Add, [a, b]) if is_num(a) && is_num(b) => Double(d(a) + d(b)),
        (Sub, [a, b]) if is_num(a) && is_num(b) => Double(d(a) - d(b)),
        (Mul, [a, b]) if is_num(a) && is_num(b) => Double(d(a) * d(b)),
        (Div, [a, b]) if is_num(a) && is_num(b) => Double(d(a) / d(b)),
        (Min, [a, b]) if is_num(a) && is_num(b) => Double(d(a).min(d(b))),
        (Max, [a, b]) if is_num(a) && is_num(b) => Double(d(a).max(d(b))),
        (Neg, [a]) if is_num(a) => Double(-d(a)),

        (Eq, [Int(a), Int(b)]) => Bool(a == b),
        (Ne, [Int(a), Int(b)]) => Bool(a != b),
        (Lt, [Int(a), Int(b)]) => Bool(a < b),
        (Le, [Int(a), Int(b)]) => Bool(a <= b),
        (Gt, [Int(a), Int(b)]) => Bool(a > b),
        (Ge, [Int(a), Int(b)]) => Bool(a >= b),
        (Eq, [Bool(a), Bool(b)]) => Bool(a == b),
        (Eq, [a, b]) if is_num(a) && is_num(b) => Bool(d(a) == d(b)),
        (Ne, [a, b]) if is_num(a) && is_num(b) => Bool(d(a) != d(b)),
        (Lt, [a, b]) if is_num(a) && is_num(b) => Bool(d(a) < d(b)),
        (Le, [a, b]) if is_num(a) && is_num(b) => Bool(d(a) <= d(b)),
        (Gt, [a, b]) if is_num(a) && is_num(b) => Bool(d(a) > d(b)),
        (Ge, [a, b]) if is_num(a) && is_num(b) => Bool(d(a) >= d(b)),

        (And, [Bool(a), Bool(b)]) => Bool(*a && *b),
        (Or, [Bool(a), Bool(b)]) => Bool(*a || *b),
        (Not, [Bool(a)]) => Bool(!a),

        (IntToDouble, [Int(a)]) => Double(*a as f64),

        (DArrayLen, [DArray(xs)]) => Int(xs.len() as i64),
        (DArrayIndex, [DArray(xs), Int(i)]) => {
            let idx = *i;
            if idx < 0 || idx as usize >= xs.len() {
                return Err(PrimError::Bounds {
                    len: xs.len(),
                    index: idx,
                });
            }
            Double(xs[idx as usize])
        }

        (DeepSeq, _) => unreachable!("DeepSeq is interpreted by the machine"),
        (op, [a]) => return Err(type_err(op, a)),
        (op, [a, _]) => return Err(type_err(op, a)),
        _ => unreachable!("arity checked above"),
    };
    Ok(r)
}

fn is_num(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::Double(_))
}

fn d(v: &Value) -> f64 {
    v.expect_double()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic() {
        assert_eq!(
            apply_prim(PrimOp::Add, &[&Value::Int(2), &Value::Int(3)]),
            Ok(Value::Int(5))
        );
        assert_eq!(
            apply_prim(PrimOp::Mod, &[&Value::Int(7), &Value::Int(3)]),
            Ok(Value::Int(1))
        );
        assert_eq!(
            apply_prim(PrimOp::Mod, &[&Value::Int(-7), &Value::Int(3)]),
            Ok(Value::Int(2)),
            "Haskell mod is Euclidean"
        );
        assert_eq!(
            apply_prim(PrimOp::Div, &[&Value::Int(1), &Value::Int(0)]),
            Err(PrimError::DivideByZero)
        );
    }

    #[test]
    fn mixed_promotes_to_double() {
        assert_eq!(
            apply_prim(PrimOp::Add, &[&Value::Int(1), &Value::Double(0.5)]),
            Ok(Value::Double(1.5))
        );
        assert_eq!(
            apply_prim(PrimOp::Lt, &[&Value::Double(1.0), &Value::Int(2)]),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            apply_prim(PrimOp::Le, &[&Value::Int(3), &Value::Int(3)]),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            apply_prim(PrimOp::And, &[&Value::Bool(true), &Value::Bool(false)]),
            Ok(Value::Bool(false))
        );
        assert_eq!(
            apply_prim(PrimOp::Not, &[&Value::Bool(false)]),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn arrays() {
        let arr = Value::DArray(vec![1.0, 2.0, 3.0].into());
        assert_eq!(apply_prim(PrimOp::DArrayLen, &[&arr]), Ok(Value::Int(3)));
        assert_eq!(
            apply_prim(PrimOp::DArrayIndex, &[&arr, &Value::Int(1)]),
            Ok(Value::Double(2.0))
        );
        assert_eq!(
            apply_prim(PrimOp::DArrayIndex, &[&arr, &Value::Int(5)]),
            Err(PrimError::Bounds { len: 3, index: 5 })
        );
    }

    #[test]
    fn arity_and_type_errors() {
        assert!(matches!(
            apply_prim(PrimOp::Add, &[&Value::Int(1)]),
            Err(PrimError::Arity { .. })
        ));
        assert!(matches!(
            apply_prim(PrimOp::Add, &[&Value::Bool(true), &Value::Int(1)]),
            Err(PrimError::Type { .. })
        ));
    }

    #[test]
    fn costs() {
        assert_eq!(PrimOp::Add.cost(), 1);
        assert!(PrimOp::Div.cost() > PrimOp::Add.cost());
    }
}
