//! # rph — parallel Haskell runtimes in Rust
//!
//! Umbrella crate of the reproduction of Berthold, Marlow, Hammond &
//! Al Zain, *Comparing and Optimising Parallel Haskell Implementations
//! for Multicore Machines* (ICPP 2009). See `rph_core` for the system
//! layers and `rph_workloads` for the paper's three benchmark
//! applications. The runnable figure/table reproductions live in the
//! `rph-bench` crate (`cargo run -p rph-bench --release --bin <figN…>`).

pub use rph_core as core;
pub use rph_core::{compare, deque, eden, gph, heap, machine, prelude, sim, table, trace};
pub use rph_native as native;
pub use rph_workloads as workloads;
